"""VCPU model: instances (permanent VMPL) multiplexed on physical cores.

Terminology follows the paper:

* A **VCPU instance** is a VMSA: register state plus a VMPL fixed at
  creation time.  Veil replicates one logical VCPU into several instances,
  one per privilege domain (section 5.2).

* A :class:`VirtualCpu` is the physical execution resource.  At any moment
  it runs exactly one instance; switching instances requires exiting to the
  hypervisor (``VMGEXIT``) and re-entering on a different VMSA
  (``VMENTER``), which is how Veil's hypervisor-relayed domain switch works.

All guest memory access funnels through :meth:`VirtualCpu.read`,
:meth:`write` and :meth:`fetch`, which enforce both the guest page table
(CPL policy) and the RMP (VMPL policy).  There is no back door: the kernel,
services, enclaves, and attack code in this reproduction all use these
methods, so a protection bypass would require a simulator bug, not a
missing check.
"""

from __future__ import annotations

import typing

from ..errors import (CvmHalted, GeneralProtectionFault, NestedPageFault,
                      SimulationError)
from .ghcb import Ghcb
from .rmp import Access
from .vmsa import RegisterFile, Vmsa

if typing.TYPE_CHECKING:
    from .platform import SevSnpMachine


class VirtualCpu:
    """A physical core executing one VCPU instance at a time."""

    def __init__(self, machine: "SevSnpMachine", cpu_index: int):
        self.machine = machine
        self.cpu_index = cpu_index
        self.instance: Vmsa | None = None
        self.regs: RegisterFile = RegisterFile()
        #: Number of world switches taken by this core (telemetry).
        self.exit_count = 0
        #: Coarse model of per-core microarchitectural state (cache/TLB
        #: footprints): a set of owner tags left behind by executions.
        #: An attacker sharing the core can observe which tags are
        #: present (timing side channel) unless WBINVD cleared them.
        self.microarch_residue: set = set()

    # -- state -----------------------------------------------------------

    @property
    def vmpl(self) -> int:
        if self.instance is None:
            raise SimulationError("VCPU is not running any instance")
        return self.instance.vmpl

    @property
    def cpl(self) -> int:
        return self.regs.cpl

    def set_cpl(self, cpl: int) -> None:
        """Ring switch (e.g. SYSCALL / SYSRET).  Free-form because ring
        transitions are an intra-instance concept; cost is charged by the
        kernel's syscall path."""
        if cpl not in (0, 3):
            raise ValueError("model supports CPL-0 and CPL-3 only")
        self.regs.cpl = cpl

    # -- hardware entry/exit paths (called by the hypervisor) ----------------

    def hw_enter(self, vmsa: Vmsa) -> None:
        """VMENTER: load an instance's register state onto this core."""
        if self.instance is not None and self.instance.running:
            raise SimulationError(
                f"core {self.cpu_index} asked to enter while instance "
                f"(vcpu {self.instance.vcpu_id}, VMPL-{self.instance.vmpl}) "
                "is still live")
        self.instance = vmsa
        self.regs = vmsa.restore()
        self.machine.tracer.instant(
            "hw", "VMENTER", vcpu=self.cpu_index, vmpl=vmsa.vmpl,
            args={"vcpu_id": vmsa.vcpu_id})

    def hw_exit(self) -> Vmsa:
        """VMEXIT: seal register state back into the current VMSA."""
        if self.instance is None:
            raise SimulationError("exit without a running instance")
        self.exit_count += 1
        self.instance.save(self.regs)
        return self.instance

    # -- memory access ------------------------------------------------------

    def _translate(self, vaddr: int, *, write: bool, execute: bool) -> int:
        table = self.machine.page_table_for_root(self.regs.cr3)
        return table.translate(vaddr, write=write, execute=execute,
                               cpl=self.regs.cpl)

    def _rmp_check(self, paddr: int, length: int, access: Access) -> None:
        """RMP permission check; a violation is fail-stop for the CVM.

        Unlike a CPL page fault (which the OS can resolve), a guest-side
        RMP violation re-faults forever -- the paper's observable defence
        is "the CVM halts with continuous #NPFs"."""
        from .memory import pages_spanned
        for ppn in pages_spanned(paddr, length):
            try:
                self.machine.rmp.check_access(ppn=ppn, vmpl=self.vmpl,
                                              access=access)
            except NestedPageFault as fault:
                self.machine.tracer.instant(
                    "hw", "NPF", vcpu=self.cpu_index, vmpl=self.vmpl,
                    args={"ppn": ppn, "access": access.name})
                self.machine.halt(f"continuous #NPF: {fault}", cause=fault)

    def read(self, vaddr: int, length: int) -> bytes:
        """Read guest-virtual memory with full protection checks."""
        paddr = self._translate(vaddr, write=False, execute=False)
        self._rmp_check(paddr, length, Access.READ)
        return self.machine.memory.read(paddr, length)

    def write(self, vaddr: int, data: bytes) -> None:
        """Write guest-virtual memory with full protection checks."""
        paddr = self._translate(vaddr, write=True, execute=False)
        self._rmp_check(paddr, len(data), Access.WRITE)
        self.machine.memory.write(paddr, data)

    def fetch(self, vaddr: int, length: int = 16) -> bytes:
        """Instruction fetch: checks UEXEC/SEXEC per current CPL."""
        paddr = self._translate(vaddr, write=False, execute=True)
        access = Access.SEXEC if self.regs.cpl == 0 else Access.UEXEC
        self._rmp_check(paddr, length, access)
        return self.machine.memory.read(paddr, length)

    # -- physical access (used only by VMPL-0 software, which owns all
    #    memory; still RMP-checked so the invariant holds structurally) ------

    def read_phys(self, paddr: int, length: int) -> bytes:
        """Physical read (RMP-checked at the current VMPL)."""
        self._rmp_check(paddr, length, Access.READ)
        return self.machine.memory.read(paddr, length)

    def write_phys(self, paddr: int, data: bytes) -> None:
        """Physical write (RMP-checked at the current VMPL)."""
        self._rmp_check(paddr, len(data), Access.WRITE)
        self.machine.memory.write(paddr, data)

    # -- SNP instructions ------------------------------------------------------

    def rmpadjust(self, *, ppn: int, target_vmpl: int, perms: Access,
                  vmsa: bool = False) -> None:
        """``RMPADJUST`` from this core's current VMPL (CPL-0 only)."""
        if self.regs.cpl != 0:
            raise GeneralProtectionFault("RMPADJUST requires CPL-0")
        try:
            self.machine.rmp.rmpadjust(executing_vmpl=self.vmpl, ppn=ppn,
                                       target_vmpl=target_vmpl, perms=perms,
                                       vmsa=vmsa)
        except NestedPageFault as fault:
            # Guest-side RMP violations are fail-stop for the CVM.
            self.machine.halt(str(fault), cause=fault)

    def pvalidate(self, *, ppn: int, validate: bool) -> None:
        """``PVALIDATE``: flip a page's validated state (CPL-0)."""
        if self.regs.cpl != 0:
            raise GeneralProtectionFault("PVALIDATE requires CPL-0")
        self.machine.rmp.pvalidate(executing_vmpl=self.vmpl, ppn=ppn,
                                   validate=validate)

    # -- MSRs -------------------------------------------------------------------

    def wrmsr_ghcb(self, gpa: int) -> None:
        """Publish the GHCB location (privileged write)."""
        if self.regs.cpl != 0:
            raise GeneralProtectionFault("WRMSR requires CPL-0")
        self.machine.ledger.charge("msr", self.machine.cost.wrmsr)
        self.regs.ghcb_msr = gpa

    def rdmsr_ghcb(self) -> int:
        """Read the GHCB location MSR."""
        self.machine.ledger.charge("msr", self.machine.cost.rdmsr)
        return self.regs.ghcb_msr

    def current_ghcb(self) -> Ghcb:
        """GHCB view for the published MSR value."""
        if self.regs.ghcb_msr == 0:
            raise SimulationError("GHCB MSR not initialized")
        return Ghcb(self.regs.ghcb_msr >> 12)

    # -- exits --------------------------------------------------------------------

    def vmgexit(self) -> None:
        """Non-automatic exit: hand control to the hypervisor.

        The hypervisor reads this core's GHCB, services the request, and
        re-enters the core -- possibly on a *different* VMSA (that is the
        domain-switch path).  On return, this core's register state is
        whatever instance the hypervisor chose to resume.
        """
        machine = self.machine
        # Attribute the span to the VMPL that *took* the exit; after
        # hw_exit the core may resume on a different instance.
        exiting_vmpl = self.instance.vmpl if self.instance else -1
        with machine.tracer.span("hw", "VMGEXIT", vcpu=self.cpu_index,
                                 vmpl=exiting_vmpl):
            machine.ledger.charge("domain_switch", machine.cost.vmgexit)
            self.hw_exit()
            machine.hypervisor.handle_vmgexit(self)
        if self.instance is None or not self.instance.running:
            raise CvmHalted("hypervisor failed to resume the VCPU")

    def automatic_exit(self, reason: str = "interrupt") -> None:
        """Automatic exit (no GHCB protocol), e.g. a timer interrupt."""
        machine = self.machine
        exiting_vmpl = self.instance.vmpl if self.instance else -1
        with machine.tracer.span("hw", "AE", vcpu=self.cpu_index,
                                 vmpl=exiting_vmpl,
                                 args={"reason": reason}):
            machine.ledger.charge("exit", machine.cost.automatic_exit)
            self.hw_exit()
            machine.hypervisor.handle_automatic_exit(self, reason)

    # -- microarchitectural state -----------------------------------------------

    def taint_microarch(self, tag: str) -> None:
        """Executions leave per-core cache/TLB footprints behind."""
        self.microarch_residue.add(tag)

    def wbinvd(self) -> None:
        """``WBINVD``: write back + invalidate CPU structures.

        Privileged (CPL-0); VeilS-ENC uses it at enclave exits to defeat
        residue-based side channels (paper section 10, eOPF)."""
        if self.regs.cpl != 0:
            raise GeneralProtectionFault("WBINVD requires CPL-0")
        self.machine.ledger.charge("wbinvd", self.machine.cost.wbinvd)
        self.microarch_residue.clear()

    # -- timers ---------------------------------------------------------------------

    def rdtsc(self) -> int:
        """Timestamp counter: the ledger's running total."""
        self.machine.ledger.charge("compute", self.machine.cost.rdtsc)
        return self.machine.ledger.total
