"""VCPU model: instances (permanent VMPL) multiplexed on physical cores.

Terminology follows the paper:

* A **VCPU instance** is a VMSA: register state plus a VMPL fixed at
  creation time.  Veil replicates one logical VCPU into several instances,
  one per privilege domain (section 5.2).

* A :class:`VirtualCpu` is the physical execution resource.  At any moment
  it runs exactly one instance; switching instances requires exiting to the
  hypervisor (``VMGEXIT``) and re-entering on a different VMSA
  (``VMENTER``), which is how Veil's hypervisor-relayed domain switch works.

All guest memory access funnels through :meth:`VirtualCpu.read`,
:meth:`write` and :meth:`fetch`, which enforce both the guest page table
(CPL policy) and the RMP (VMPL policy).  There is no back door: the kernel,
services, enclaves, and attack code in this reproduction all use these
methods, so a protection bypass would require a simulator bug, not a
missing check.
"""

from __future__ import annotations

import typing

from ..errors import (CvmHalted, GeneralProtectionFault, NestedPageFault,
                      SimulationError)
from ..trace import NULL_SPAN
from .ghcb import Ghcb
from .memory import PAGE_SHIFT, PAGE_SIZE, pages_spanned
from .pagetable import PageFault
from .rmp import Access
from .tlb import SoftTlb
from .vmsa import RegisterFile, Vmsa

_OFFSET_MASK = PAGE_SIZE - 1

# Pre-resolved access bits for the packed RMP-verdict cache keys
# ``(ppn << 6) | (vmpl << 4) | access_bits`` (see repro.hw.tlb).
_READ_BIT = Access.READ.value
_WRITE_BIT = Access.WRITE.value
_UEXEC_BIT = Access.UEXEC.value
_SEXEC_BIT = Access.SEXEC.value

if typing.TYPE_CHECKING:
    from .platform import SevSnpMachine


class VirtualCpu:
    """A physical core executing one VCPU instance at a time."""

    def __init__(self, machine: "SevSnpMachine", cpu_index: int):
        self.machine = machine
        self.cpu_index = cpu_index
        self.instance: Vmsa | None = None
        self.regs: RegisterFile = RegisterFile()
        #: Per-core software TLB + RMP permission cache (veil-turbo).
        self.tlb = SoftTlb(machine.tlb_enabled)
        # Pre-resolved ledger handles and costs for the access fast path.
        # Handles charge exactly what CycleLedger.charge would, so cycle
        # totals are independent of the cache being on or off.
        self._h_walk = machine.ledger.handle("page_table_walk")
        self._h_copy = machine.ledger.handle("copy")
        self._walk_cost = machine.cost.page_table_walk
        self._copy_x1000 = machine.cost.copy_per_byte_x1000
        #: Number of world switches taken by this core (telemetry).
        self.exit_count = 0
        #: Coarse model of per-core microarchitectural state (cache/TLB
        #: footprints): a set of owner tags left behind by executions.
        #: An attacker sharing the core can observe which tags are
        #: present (timing side channel) unless WBINVD cleared them.
        self.microarch_residue: set = set()

    # -- state -----------------------------------------------------------

    @property
    def vmpl(self) -> int:
        if self.instance is None:
            raise SimulationError("VCPU is not running any instance")
        return self.instance.vmpl

    @property
    def cpl(self) -> int:
        return self.regs.cpl

    def set_cpl(self, cpl: int) -> None:
        """Ring switch (e.g. SYSCALL / SYSRET).  Free-form because ring
        transitions are an intra-instance concept; cost is charged by the
        kernel's syscall path."""
        if cpl not in (0, 3):
            raise ValueError("model supports CPL-0 and CPL-3 only")
        self.regs.cpl = cpl

    # -- hardware entry/exit paths (called by the hypervisor) ----------------

    def hw_enter(self, vmsa: Vmsa) -> None:
        """VMENTER: load an instance's register state onto this core."""
        if self.instance is not None and self.instance.running:
            raise SimulationError(
                f"core {self.cpu_index} asked to enter while instance "
                f"(vcpu {self.instance.vcpu_id}, VMPL-{self.instance.vmpl}) "
                "is still live")
        self.instance = vmsa
        self.regs = vmsa.restore()
        # World switch: architectural TLB flush (paper's domain-switch
        # cost model already charges the switch; the flush is free).
        self.flush_tlb()
        self.machine.tracer.instant(
            "hw", "VMENTER", vcpu=self.cpu_index, vmpl=vmsa.vmpl,
            args={"vcpu_id": vmsa.vcpu_id})

    def hw_exit(self) -> Vmsa:
        """VMEXIT: seal register state back into the current VMSA."""
        if self.instance is None:
            raise SimulationError("exit without a running instance")
        self.exit_count += 1
        self.flush_tlb()
        self.instance.save(self.regs)
        return self.instance

    def flush_tlb(self) -> None:
        """Architectural TLB flush for this core (translations + cached
        RMP verdicts).

        Called on world switches, on ``WBINVD``, and at explicit CR3
        loads outside the PCID-tagged syscall path (scheduler context
        switch, domain-switch gateway, kernel address-space install).
        Charges nothing: modeled flush costs are charged where the
        architecture charges them (``unmap``/``protect``/``wbinvd``).
        """
        if self.tlb.enabled:
            self.tlb.flush()

    # -- memory access ------------------------------------------------------

    def _translate(self, vaddr: int, *, write: bool, execute: bool) -> int:
        """Uncached full-address translation (kept for callers that want a
        physical address; the checked access paths below translate per
        virtual page)."""
        table = self.machine.page_table_for_root(self.regs.cr3)
        return table.translate(vaddr, write=write, execute=execute,
                               cpl=self.regs.cpl)

    def _translate_vpn(self, vpn: int, write: bool, execute: bool) -> int:
        """Translate one virtual page, enforcing CPL policy; returns the
        physical page number.

        With the software TLB enabled this is the cached walk.  It is
        cycle-for-cycle identical to the uncached
        :meth:`~repro.hw.pagetable.GuestPageTable.translate`: the same
        walk cost is charged before any fault can raise, CPL policy is
        re-evaluated per access from the cached flags, the same
        :class:`PageFault` kinds are raised in the same order, and failed
        lookups are never cached.
        """
        machine = self.machine
        tlb = self.tlb
        if not tlb.enabled:
            paddr = machine.page_table_for_root(self.regs.cr3).translate(
                vpn << PAGE_SHIFT, write=write, execute=execute,
                cpl=self.regs.cpl)
            return paddr >> PAGE_SHIFT
        root = self.regs.cr3
        table = machine._page_tables.get(root)
        if table is None:
            raise SimulationError(f"no page table rooted at {root:#x}")
        view = tlb.views.get(root)
        if (view is None or view.table is not table
                or view.generation != table.generation):
            view = tlb.view_for(root, table)
        pte = view.entries.get(vpn)
        if pte is None:
            tlb.stats.misses += 1
            pte = table.entry(vpn)
            if pte is not None:
                view.entries[vpn] = pte
        else:
            tlb.stats.hits += 1
        # Same walk charge as the uncached translate, hit or miss, so
        # cycle totals are independent of the cache.
        self._h_walk.charge(self._walk_cost)
        if pte is None:
            raise PageFault(vpn, "write" if write else
                            "execute" if execute else "read")
        if write and not pte.writable:
            raise PageFault(vpn, "write-protected")
        if self.regs.cpl == 3 and not pte.user:
            raise PageFault(vpn, "supervisor-only")
        if execute and pte.nx:
            raise PageFault(vpn, "nx")
        return pte.ppn

    def _rmp_check_page(self, ppn: int, access: Access) -> None:
        """RMP check for one page; a violation is fail-stop for the CVM.

        Unlike a CPL page fault (which the OS can resolve), a guest-side
        RMP violation re-faults forever -- the paper's observable defence
        is "the CVM halts with continuous #NPFs".  Only *allow* verdicts
        are cached (:meth:`~repro.hw.rmp.Rmp.check_access` charges no
        cycles, so caching it is ledger-neutral); the cache is dropped
        whenever the RMP generation moved.
        """
        machine = self.machine
        vmpl = self.vmpl
        tlb = self.tlb
        if tlb.enabled:
            rmp = machine.rmp
            if tlb.rmp_generation != rmp.generation:
                tlb.invalidate_rmp(rmp.generation)
            key = (ppn << 6) | (vmpl << 4) | access.value
            if key in tlb.rmp_allow:
                tlb.stats.rmp_hits += 1
                return
            self._rmp_fill(ppn, vmpl, access, key)
            return
        try:
            machine.rmp.check_access(ppn=ppn, vmpl=vmpl, access=access)
        except NestedPageFault as fault:
            machine.tracer.instant(
                "hw", "NPF", vcpu=self.cpu_index, vmpl=vmpl,
                args={"ppn": ppn, "access": access.name})
            machine.halt(f"continuous #NPF: {fault}", cause=fault)

    def _rmp_fill(self, ppn: int, vmpl: int, access: Access,
                  key: int) -> None:
        """Verdict-cache miss: re-derive the RMP verdict and cache it.

        Separated from the access fast path so the hit path stays a pure
        set-membership test.  Failures halt the machine before the cache
        insert, so a deny verdict is never cached.
        """
        machine = self.machine
        tlb = self.tlb
        tlb.stats.rmp_misses += 1
        try:
            machine.rmp.check_access(ppn=ppn, vmpl=vmpl, access=access)
        except NestedPageFault as fault:
            machine.tracer.instant(
                "hw", "NPF", vcpu=self.cpu_index, vmpl=vmpl,
                args={"ppn": ppn, "access": access.name})
            machine.halt(f"continuous #NPF: {fault}", cause=fault)
        tlb.rmp_allow.add(key)

    def _refresh_view(self, root: int) -> "object":
        """Re-validate the TLB's current-root shortcut for ``root``.

        Installs (or re-uses) the per-root view and records the
        page-table-registry version it was validated under.
        """
        machine = self.machine
        tlb = self.tlb
        table = machine._page_tables.get(root)
        if table is None:
            raise SimulationError(f"no page table rooted at {root:#x}")
        view = tlb.views.get(root)
        if (view is None or view.table is not table
                or view.generation != table.generation):
            view = tlb.view_for(root, table)
        tlb.cur_root = root
        tlb.cur_view = view
        tlb.cur_ptver = machine._pt_version
        return view

    def _rmp_check(self, paddr: int, length: int, access: Access) -> None:
        """RMP permission check over every page of a physical range."""
        for ppn in pages_spanned(paddr, length):
            self._rmp_check_page(ppn, access)

    # The three access methods below each have an inlined fast path: one
    # per-call validity check (RMP generation, current-root view), then a
    # per-page loop of plain dict/set operations with every attribute
    # pre-bound to a local.  The duplication across read/write/fetch is
    # deliberate -- this is the simulator's hottest loop, and factoring
    # the body into helpers costs ~2x wall-clock (measured; Python call
    # overhead dominates).  The slow twins (`_read_slow` etc.) keep the
    # seed-identical uncached path and handle the edge cases; both paths
    # charge the same ledger categories with the same amounts at the same
    # points, which is what keeps cycle totals and traces byte-identical
    # across VEIL_TLB modes (a tested invariant).

    def read(self, vaddr: int, length: int) -> bytes:
        """Read guest-virtual memory with full protection checks.

        Translates *every* spanned virtual page and gathers -- virtually
        contiguous pages need not be physically contiguous.
        """
        tlb = self.tlb
        instance = self.instance
        if not tlb.enabled or length <= 0 or instance is None:
            return self._read_slow(vaddr, length)
        machine = self.machine
        # Per-call validity: nothing inside a single access can move the
        # RMP or page-table generations, so check once, not per page.
        rmp = machine.rmp
        if tlb.rmp_generation != rmp.generation:
            tlb.invalidate_rmp(rmp.generation)
        root = self.regs.cr3
        view = tlb.cur_view
        if (root != tlb.cur_root or machine._pt_version != tlb.cur_ptver
                or view.generation != view.table.generation):
            view = self._refresh_view(root)
        entries = view.entries
        table = view.table
        allow = tlb.rmp_allow
        stats = tlb.stats
        vmpl_bits = instance.vmpl << 4
        user_ok = self.regs.cpl != 3
        charge_walk = self._h_walk.charge
        charge_copy = self._h_copy.charge
        walk_cost = self._walk_cost
        copy_x1000 = self._copy_x1000
        memory = machine.memory
        pages = memory._pages
        offset = vaddr & _OFFSET_MASK
        if offset + length <= PAGE_SIZE:
            vpn = vaddr >> PAGE_SHIFT
            pte = entries.get(vpn)
            if pte is None:
                stats.misses += 1
                pte = table.entry(vpn)
                if pte is not None:
                    entries[vpn] = pte
            else:
                stats.hits += 1
            charge_walk(walk_cost)
            if pte is None:
                raise PageFault(vpn, "read")
            if not (user_ok or pte.user):
                raise PageFault(vpn, "supervisor-only")
            ppn = pte.ppn
            key = (ppn << 6) | vmpl_bits | _READ_BIT
            if key in allow:
                stats.rmp_hits += 1
            else:
                self._rmp_fill(ppn, vmpl_bits >> 4, Access.READ, key)
            charge_copy(length * copy_x1000 // 1000)
            buf = pages.get(ppn)
            if buf is None:
                return memory.page_bytes(ppn, offset, length)
            return bytes(memoryview(buf)[offset:offset + length])
        # veil-warp: cross-page gather aggregates the per-page ledger
        # charges into one call per category.  Totals are identical to
        # per-page charging (integer addition commutes and nothing reads
        # the clock mid-access); the ``finally`` flush keeps the
        # partial-charge semantics of a faulting access exact too.
        out = bytearray(length)
        pos = 0
        walk_acc = 0
        copy_acc = 0
        try:
            while pos < length:
                cur = vaddr + pos
                off = cur & _OFFSET_MASK
                chunk = PAGE_SIZE - off
                if chunk > length - pos:
                    chunk = length - pos
                vpn = cur >> PAGE_SHIFT
                pte = entries.get(vpn)
                if pte is None:
                    stats.misses += 1
                    pte = table.entry(vpn)
                    if pte is not None:
                        entries[vpn] = pte
                else:
                    stats.hits += 1
                walk_acc += walk_cost
                if pte is None:
                    raise PageFault(vpn, "read")
                if not (user_ok or pte.user):
                    raise PageFault(vpn, "supervisor-only")
                ppn = pte.ppn
                key = (ppn << 6) | vmpl_bits | _READ_BIT
                if key in allow:
                    stats.rmp_hits += 1
                else:
                    self._rmp_fill(ppn, vmpl_bits >> 4, Access.READ, key)
                copy_acc += chunk * copy_x1000 // 1000
                buf = pages.get(ppn)
                if buf is None:
                    out[pos:pos + chunk] = memory.page_bytes(ppn, off,
                                                             chunk)
                else:
                    out[pos:pos + chunk] = memoryview(buf)[off:off + chunk]
                pos += chunk
        finally:
            charge_walk(walk_acc)
            charge_copy(copy_acc)
        return bytes(out)

    def _read_slow(self, vaddr: int, length: int) -> bytes:
        """Uncached / edge-case read path (seed-identical semantics)."""
        if length <= 0:
            if length < 0:
                raise ValueError("negative length")
            self._translate_vpn(vaddr >> PAGE_SHIFT, False, False)
            self._h_copy.charge(0)
            return b""
        memory = self.machine.memory
        offset = vaddr & _OFFSET_MASK
        if offset + length <= PAGE_SIZE:
            ppn = self._translate_vpn(vaddr >> PAGE_SHIFT, False, False)
            self._rmp_check_page(ppn, Access.READ)
            self._h_copy.charge(length * self._copy_x1000 // 1000)
            return memory.page_bytes(ppn, offset, length)
        # veil-warp: aggregate the per-page copy charges (see `read`).
        out = bytearray(length)
        pos = 0
        copy_acc = 0
        try:
            while pos < length:
                cur = vaddr + pos
                off = cur & _OFFSET_MASK
                chunk = min(length - pos, PAGE_SIZE - off)
                ppn = self._translate_vpn(cur >> PAGE_SHIFT, False, False)
                self._rmp_check_page(ppn, Access.READ)
                copy_acc += chunk * self._copy_x1000 // 1000
                out[pos:pos + chunk] = memory.page_bytes(ppn, off, chunk)
                pos += chunk
        finally:
            self._h_copy.charge(copy_acc)
        return bytes(out)

    def write(self, vaddr: int, data: bytes) -> None:
        """Write guest-virtual memory with full protection checks.

        Scatter counterpart of :meth:`read`: translates and checks per
        spanned virtual page.
        """
        tlb = self.tlb
        instance = self.instance
        length = len(data)
        if not tlb.enabled or length == 0 or instance is None:
            return self._write_slow(vaddr, data)
        machine = self.machine
        rmp = machine.rmp
        if tlb.rmp_generation != rmp.generation:
            tlb.invalidate_rmp(rmp.generation)
        root = self.regs.cr3
        view = tlb.cur_view
        if (root != tlb.cur_root or machine._pt_version != tlb.cur_ptver
                or view.generation != view.table.generation):
            view = self._refresh_view(root)
        entries = view.entries
        table = view.table
        allow = tlb.rmp_allow
        stats = tlb.stats
        vmpl_bits = instance.vmpl << 4
        user_ok = self.regs.cpl != 3
        charge_walk = self._h_walk.charge
        charge_copy = self._h_copy.charge
        walk_cost = self._walk_cost
        copy_x1000 = self._copy_x1000
        memory = machine.memory
        pages = memory._pages
        offset = vaddr & _OFFSET_MASK
        if offset + length <= PAGE_SIZE:
            vpn = vaddr >> PAGE_SHIFT
            pte = entries.get(vpn)
            if pte is None:
                stats.misses += 1
                pte = table.entry(vpn)
                if pte is not None:
                    entries[vpn] = pte
            else:
                stats.hits += 1
            charge_walk(walk_cost)
            if pte is None:
                raise PageFault(vpn, "write")
            if not pte.writable:
                raise PageFault(vpn, "write-protected")
            if not (user_ok or pte.user):
                raise PageFault(vpn, "supervisor-only")
            ppn = pte.ppn
            key = (ppn << 6) | vmpl_bits | _WRITE_BIT
            if key in allow:
                stats.rmp_hits += 1
            else:
                self._rmp_fill(ppn, vmpl_bits >> 4, Access.WRITE, key)
            charge_copy(length * copy_x1000 // 1000)
            buf = pages.get(ppn)
            if buf is None:
                memory.page_write(ppn, offset, data)
            else:
                buf[offset:offset + length] = data
            return
        # veil-warp: cross-page scatter with aggregated charges (see
        # `read` for the parity argument).
        src = memoryview(data)
        pos = 0
        walk_acc = 0
        copy_acc = 0
        try:
            while pos < length:
                cur = vaddr + pos
                off = cur & _OFFSET_MASK
                chunk = PAGE_SIZE - off
                if chunk > length - pos:
                    chunk = length - pos
                vpn = cur >> PAGE_SHIFT
                pte = entries.get(vpn)
                if pte is None:
                    stats.misses += 1
                    pte = table.entry(vpn)
                    if pte is not None:
                        entries[vpn] = pte
                else:
                    stats.hits += 1
                walk_acc += walk_cost
                if pte is None:
                    raise PageFault(vpn, "write")
                if not pte.writable:
                    raise PageFault(vpn, "write-protected")
                if not (user_ok or pte.user):
                    raise PageFault(vpn, "supervisor-only")
                ppn = pte.ppn
                key = (ppn << 6) | vmpl_bits | _WRITE_BIT
                if key in allow:
                    stats.rmp_hits += 1
                else:
                    self._rmp_fill(ppn, vmpl_bits >> 4, Access.WRITE, key)
                copy_acc += chunk * copy_x1000 // 1000
                buf = pages.get(ppn)
                if buf is None:
                    memory.page_write(ppn, off, src[pos:pos + chunk])
                else:
                    buf[off:off + chunk] = src[pos:pos + chunk]
                pos += chunk
        finally:
            charge_walk(walk_acc)
            charge_copy(copy_acc)

    def _write_slow(self, vaddr: int, data: bytes) -> None:
        """Uncached / edge-case write path (seed-identical semantics)."""
        length = len(data)
        if length == 0:
            self._translate_vpn(vaddr >> PAGE_SHIFT, True, False)
            self._h_copy.charge(0)
            return
        memory = self.machine.memory
        offset = vaddr & _OFFSET_MASK
        if offset + length <= PAGE_SIZE:
            ppn = self._translate_vpn(vaddr >> PAGE_SHIFT, True, False)
            self._rmp_check_page(ppn, Access.WRITE)
            self._h_copy.charge(length * self._copy_x1000 // 1000)
            memory.page_write(ppn, offset, data)
            return
        # veil-warp: aggregate the per-page copy charges (see `read`).
        view = memoryview(data)
        pos = 0
        copy_acc = 0
        try:
            while pos < length:
                cur = vaddr + pos
                off = cur & _OFFSET_MASK
                chunk = min(length - pos, PAGE_SIZE - off)
                ppn = self._translate_vpn(cur >> PAGE_SHIFT, True, False)
                self._rmp_check_page(ppn, Access.WRITE)
                copy_acc += chunk * self._copy_x1000 // 1000
                memory.page_write(ppn, off, view[pos:pos + chunk])
                pos += chunk
        finally:
            self._h_copy.charge(copy_acc)

    def fetch(self, vaddr: int, length: int = 16) -> bytes:
        """Instruction fetch: checks UEXEC/SEXEC per current CPL."""
        tlb = self.tlb
        instance = self.instance
        if not tlb.enabled or length <= 0 or instance is None:
            return self._fetch_slow(vaddr, length)
        machine = self.machine
        rmp = machine.rmp
        if tlb.rmp_generation != rmp.generation:
            tlb.invalidate_rmp(rmp.generation)
        root = self.regs.cr3
        view = tlb.cur_view
        if (root != tlb.cur_root or machine._pt_version != tlb.cur_ptver
                or view.generation != view.table.generation):
            view = self._refresh_view(root)
        entries = view.entries
        table = view.table
        allow = tlb.rmp_allow
        stats = tlb.stats
        vmpl_bits = instance.vmpl << 4
        supervisor = self.regs.cpl == 0
        access = Access.SEXEC if supervisor else Access.UEXEC
        access_bit = _SEXEC_BIT if supervisor else _UEXEC_BIT
        charge_walk = self._h_walk.charge
        charge_copy = self._h_copy.charge
        walk_cost = self._walk_cost
        copy_x1000 = self._copy_x1000
        memory = machine.memory
        pages = memory._pages
        offset = vaddr & _OFFSET_MASK
        if offset + length <= PAGE_SIZE:
            vpn = vaddr >> PAGE_SHIFT
            pte = entries.get(vpn)
            if pte is None:
                stats.misses += 1
                pte = table.entry(vpn)
                if pte is not None:
                    entries[vpn] = pte
            else:
                stats.hits += 1
            charge_walk(walk_cost)
            if pte is None:
                raise PageFault(vpn, "execute")
            if not supervisor and not pte.user:
                raise PageFault(vpn, "supervisor-only")
            if pte.nx:
                raise PageFault(vpn, "nx")
            ppn = pte.ppn
            key = (ppn << 6) | vmpl_bits | access_bit
            if key in allow:
                stats.rmp_hits += 1
            else:
                self._rmp_fill(ppn, vmpl_bits >> 4, access, key)
            charge_copy(length * copy_x1000 // 1000)
            buf = pages.get(ppn)
            if buf is None:
                return memory.page_bytes(ppn, offset, length)
            return bytes(memoryview(buf)[offset:offset + length])
        # veil-warp: cross-page fetch with aggregated charges (see
        # `read` for the parity argument).
        out = bytearray(length)
        pos = 0
        walk_acc = 0
        copy_acc = 0
        try:
            while pos < length:
                cur = vaddr + pos
                off = cur & _OFFSET_MASK
                chunk = PAGE_SIZE - off
                if chunk > length - pos:
                    chunk = length - pos
                vpn = cur >> PAGE_SHIFT
                pte = entries.get(vpn)
                if pte is None:
                    stats.misses += 1
                    pte = table.entry(vpn)
                    if pte is not None:
                        entries[vpn] = pte
                else:
                    stats.hits += 1
                walk_acc += walk_cost
                if pte is None:
                    raise PageFault(vpn, "execute")
                if not supervisor and not pte.user:
                    raise PageFault(vpn, "supervisor-only")
                if pte.nx:
                    raise PageFault(vpn, "nx")
                ppn = pte.ppn
                key = (ppn << 6) | vmpl_bits | access_bit
                if key in allow:
                    stats.rmp_hits += 1
                else:
                    self._rmp_fill(ppn, vmpl_bits >> 4, access, key)
                copy_acc += chunk * copy_x1000 // 1000
                buf = pages.get(ppn)
                if buf is None:
                    out[pos:pos + chunk] = memory.page_bytes(ppn, off,
                                                             chunk)
                else:
                    out[pos:pos + chunk] = memoryview(buf)[off:off + chunk]
                pos += chunk
        finally:
            charge_walk(walk_acc)
            charge_copy(copy_acc)
        return bytes(out)

    def _fetch_slow(self, vaddr: int, length: int) -> bytes:
        """Uncached / edge-case fetch path (seed-identical semantics)."""
        access = Access.SEXEC if self.regs.cpl == 0 else Access.UEXEC
        if length <= 0:
            if length < 0:
                raise ValueError("negative length")
            self._translate_vpn(vaddr >> PAGE_SHIFT, False, True)
            self._h_copy.charge(0)
            return b""
        memory = self.machine.memory
        offset = vaddr & _OFFSET_MASK
        if offset + length <= PAGE_SIZE:
            ppn = self._translate_vpn(vaddr >> PAGE_SHIFT, False, True)
            self._rmp_check_page(ppn, access)
            self._h_copy.charge(length * self._copy_x1000 // 1000)
            return memory.page_bytes(ppn, offset, length)
        # veil-warp: aggregate the per-page copy charges (see `read`).
        out = bytearray(length)
        pos = 0
        copy_acc = 0
        try:
            while pos < length:
                cur = vaddr + pos
                off = cur & _OFFSET_MASK
                chunk = min(length - pos, PAGE_SIZE - off)
                ppn = self._translate_vpn(cur >> PAGE_SHIFT, False, True)
                self._rmp_check_page(ppn, access)
                copy_acc += chunk * self._copy_x1000 // 1000
                out[pos:pos + chunk] = memory.page_bytes(ppn, off, chunk)
                pos += chunk
        finally:
            self._h_copy.charge(copy_acc)
        return bytes(out)

    # -- physical access (used only by VMPL-0 software, which owns all
    #    memory; still RMP-checked so the invariant holds structurally) ------

    def read_phys(self, paddr: int, length: int) -> bytes:
        """Physical read (RMP-checked at the current VMPL)."""
        self._rmp_check(paddr, length, Access.READ)
        return self.machine.memory.read(paddr, length)

    def write_phys(self, paddr: int, data: bytes) -> None:
        """Physical write (RMP-checked at the current VMPL)."""
        self._rmp_check(paddr, len(data), Access.WRITE)
        self.machine.memory.write(paddr, data)

    # -- SNP instructions ------------------------------------------------------

    def rmpadjust(self, *, ppn: int, target_vmpl: int, perms: Access,
                  vmsa: bool = False) -> None:
        """``RMPADJUST`` from this core's current VMPL (CPL-0 only)."""
        if self.regs.cpl != 0:
            raise GeneralProtectionFault("RMPADJUST requires CPL-0")
        try:
            self.machine.rmp.rmpadjust(executing_vmpl=self.vmpl, ppn=ppn,
                                       target_vmpl=target_vmpl, perms=perms,
                                       vmsa=vmsa)
        except NestedPageFault as fault:
            # Guest-side RMP violations are fail-stop for the CVM.
            self.machine.halt(str(fault), cause=fault)

    def pvalidate(self, *, ppn: int, validate: bool) -> None:
        """``PVALIDATE``: flip a page's validated state (CPL-0)."""
        if self.regs.cpl != 0:
            raise GeneralProtectionFault("PVALIDATE requires CPL-0")
        self.machine.rmp.pvalidate(executing_vmpl=self.vmpl, ppn=ppn,
                                   validate=validate)

    # -- MSRs -------------------------------------------------------------------

    def wrmsr_ghcb(self, gpa: int) -> None:
        """Publish the GHCB location (privileged write)."""
        if self.regs.cpl != 0:
            raise GeneralProtectionFault("WRMSR requires CPL-0")
        self.machine.ledger.charge("msr", self.machine.cost.wrmsr)
        self.regs.ghcb_msr = gpa

    def rdmsr_ghcb(self) -> int:
        """Read the GHCB location MSR."""
        self.machine.ledger.charge("msr", self.machine.cost.rdmsr)
        return self.regs.ghcb_msr

    def current_ghcb(self) -> Ghcb:
        """GHCB view for the published MSR value."""
        if self.regs.ghcb_msr == 0:
            raise SimulationError("GHCB MSR not initialized")
        return Ghcb(self.regs.ghcb_msr >> 12)

    # -- exits --------------------------------------------------------------------

    def vmgexit(self) -> None:
        """Non-automatic exit: hand control to the hypervisor.

        The hypervisor reads this core's GHCB, services the request, and
        re-enters the core -- possibly on a *different* VMSA (that is the
        domain-switch path).  On return, this core's register state is
        whatever instance the hypervisor chose to resume.
        """
        machine = self.machine
        # Attribute the span to the VMPL that *took* the exit; after
        # hw_exit the core may resume on a different instance.
        exiting_vmpl = self.instance.vmpl if self.instance else -1
        tracer = machine.tracer
        span = tracer.span("hw", "VMGEXIT", vcpu=self.cpu_index,
                           vmpl=exiting_vmpl) \
            if tracer.enabled else NULL_SPAN
        with span:
            machine.ledger.charge("domain_switch", machine.cost.vmgexit)
            self.hw_exit()
            machine.hypervisor.handle_vmgexit(self)
        if self.instance is None or not self.instance.running:
            raise CvmHalted("hypervisor failed to resume the VCPU")

    def automatic_exit(self, reason: str = "interrupt") -> None:
        """Automatic exit (no GHCB protocol), e.g. a timer interrupt."""
        machine = self.machine
        exiting_vmpl = self.instance.vmpl if self.instance else -1
        tracer = machine.tracer
        span = tracer.span("hw", "AE", vcpu=self.cpu_index,
                           vmpl=exiting_vmpl, args={"reason": reason}) \
            if tracer.enabled else NULL_SPAN
        with span:
            machine.ledger.charge("exit", machine.cost.automatic_exit)
            self.hw_exit()
            machine.hypervisor.handle_automatic_exit(self, reason)

    # -- microarchitectural state -----------------------------------------------

    def taint_microarch(self, tag: str) -> None:
        """Executions leave per-core cache/TLB footprints behind."""
        self.microarch_residue.add(tag)

    def wbinvd(self) -> None:
        """``WBINVD``: write back + invalidate CPU structures.

        Privileged (CPL-0); VeilS-ENC uses it at enclave exits to defeat
        residue-based side channels (paper section 10, eOPF)."""
        if self.regs.cpl != 0:
            raise GeneralProtectionFault("WBINVD requires CPL-0")
        self.machine.ledger.charge("wbinvd", self.machine.cost.wbinvd)
        self.microarch_residue.clear()
        self.flush_tlb()

    # -- timers ---------------------------------------------------------------------

    def rdtsc(self) -> int:
        """Timestamp counter: the ledger's running total."""
        self.machine.ledger.charge("compute", self.machine.cost.rdtsc)
        return self.machine.ledger.total
