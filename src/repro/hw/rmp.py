"""Reverse Map (RMP) table and VMPL permission enforcement.

The RMP is SEV-SNP's per-physical-page metadata table.  For this
reproduction each entry tracks:

* ``assigned`` -- page belongs to the guest (vs. hypervisor/shared);
* ``validated`` -- guest has executed ``PVALIDATE`` on the page;
* ``vmsa`` -- page holds a VM Save Area (not normally accessible);
* a permission mask per VMPL (read / write / user-exec / supervisor-exec).

Semantics mirror the AMD SNP ABI as used by the paper:

* VMPL-0 implicitly holds full permissions on every assigned page.
* ``RMPADJUST`` executed at VMPL *n* may only modify permissions of VMPLs
  strictly less privileged than *n* (numerically greater).  An attempt to
  touch the permissions of one's own or a more-privileged VMPL raises a
  fault -- this is the architectural guarantee Veil's Table 1 row
  "Adjust VMPL restrictions -> RMPADJUST prohibited" relies on.
* Any access whose permission bit is clear raises
  :class:`~repro.errors.NestedPageFault` (#NPF).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import InvalidInstruction, NestedPageFault
from ..trace import NULL_SPAN, NULL_TRACER
from .cycles import CostModel, CycleLedger

NUM_VMPLS = 4

# The paper's fixed domain-to-VMPL assignment (section 5.1).  These are
# hardware vocabulary: every layer above ``hw`` must use the names, never
# the raw integers (enforced by veil-lint's ``vmpl-literal`` rule).
VMPL_MON = 0      # DomMON: the VeilMon security monitor
VMPL_SER = 1      # DomSER: protected services (KCI / ENC / LOG)
VMPL_ENC = 2      # DomENC: enclaves
VMPL_UNT = 3      # DomUNT: the untrusted OS and its processes

#: VMPL -> paper domain name, for telemetry and rendering.
DOMAIN_NAMES = {VMPL_MON: "DomMON", VMPL_SER: "DomSER",
                VMPL_ENC: "DomENC", VMPL_UNT: "DomUNT"}


def vmpl_name(vmpl: int) -> str:
    """The paper's domain name for ``vmpl`` (e.g. ``DomMON``)."""
    return DOMAIN_NAMES.get(vmpl, f"VMPL{vmpl}")


class Access(enum.Flag):
    """Access kinds tracked per VMPL, matching the SNP permission bits."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    UEXEC = enum.auto()    # execute at CPL-3
    SEXEC = enum.auto()    # execute at CPL-0

    @classmethod
    def all(cls) -> "Access":
        return cls.READ | cls.WRITE | cls.UEXEC | cls.SEXEC

    @classmethod
    def rw(cls) -> "Access":
        return cls.READ | cls.WRITE


def _default_perms() -> list[Access]:
    # VMPL-0 always has full access; others start with none.
    return [Access.all(), Access.NONE, Access.NONE, Access.NONE]


@dataclass
class RmpEntry:
    """RMP metadata for one 4 KiB physical page."""

    assigned: bool = False
    validated: bool = False
    vmsa: bool = False
    shared: bool = False
    perms: list[Access] = field(default_factory=_default_perms)

    def allows(self, vmpl: int, access: Access) -> bool:
        """Whether ``vmpl`` holds every bit of ``access``."""
        if vmpl == 0:
            return True
        return (self.perms[vmpl] & access) == access


class Rmp:
    """The machine-wide reverse map table."""

    def __init__(self, num_pages: int, *, cost: CostModel | None = None,
                 ledger: CycleLedger | None = None, tracer=None):
        self.num_pages = num_pages
        #: Monotonic mutation counter covering the whole table.  Every
        #: operation that can change an entry's state -- including
        #: :meth:`entry`, which hands out a mutable reference -- bumps it;
        #: the per-VCPU software TLB (:mod:`repro.hw.tlb`) discards its
        #: cached allow-verdicts whenever the generation moved.  veil-lint's
        #: ``rmp-mutation-generation`` rule enforces that mutators bump.
        self.generation = 0
        self._entries: dict[int, RmpEntry] = {}
        #: Template for pages without an explicit entry.  Bulk operations
        #: (the boot sweep) update this template instead of materializing
        #: millions of entries; semantics are identical to per-page updates
        #: because explicit entries always take precedence.
        self._default = RmpEntry()
        self.cost = cost or CostModel()
        self.ledger = ledger or CycleLedger()
        self.tracer = tracer or NULL_TRACER

    def entry(self, ppn: int) -> RmpEntry:
        """Materialized (mutable) entry for ``ppn``."""
        self._check_ppn(ppn)
        ent = self._entries.get(ppn)
        if ent is None:
            ent = RmpEntry(assigned=self._default.assigned,
                           validated=self._default.validated,
                           vmsa=False, shared=self._default.shared,
                           perms=list(self._default.perms))
            self._entries[ppn] = ent
        # Pessimistic: the caller receives a *mutable* entry, so any cached
        # verdict may be about to go stale (tests poke perms directly).
        self.generation += 1
        return ent

    def peek(self, ppn: int) -> RmpEntry:
        """Entry for ``ppn`` without materializing it (read-only use)."""
        self._check_ppn(ppn)
        return self._entries.get(ppn, self._default)

    # -- bulk operations (simulator fast path for full-memory sweeps) -------

    def bulk_rmpadjust(self, *, executing_vmpl: int, target_vmpl: int,
                       perms: Access, count: int,
                       exclude: "set[int] | frozenset[int]" = frozenset()
                       ) -> None:
        """Apply ``RMPADJUST`` to every page except ``exclude``.

        Architecturally equivalent to calling :meth:`rmpadjust` on each of
        ``count`` pages (and charged as such); kept as one call so the
        boot-time sweep over gigabytes is tractable to simulate.
        """
        self._check_vmpl(executing_vmpl)
        self._check_vmpl(target_vmpl)
        if target_vmpl <= executing_vmpl:
            raise InvalidInstruction(
                f"RMPADJUST from VMPL-{executing_vmpl} may not modify "
                f"VMPL-{target_vmpl} permissions")
        tracer = self.tracer
        span = tracer.span("hw", "RMPADJUST_SWEEP", vmpl=executing_vmpl,
                           args={"pages": count,
                                 "target_vmpl": target_vmpl}) \
            if tracer.enabled else NULL_SPAN
        with span:
            self.ledger.charge("rmpadjust", self.cost.rmpadjust * count)
            # Excluded pages keep their current (typically restricted)
            # state; materialize them so the default change below cannot
            # reach them.
            for ppn in exclude:
                self.entry(ppn)
            self._default.perms[target_vmpl] = perms
            for ppn, ent in self._entries.items():
                if ppn not in exclude and ent.assigned and not ent.vmsa \
                        and not ent.shared:
                    ent.perms[target_vmpl] = perms
            self.generation += 1

    def bulk_assign_validate(self, count: int) -> None:
        """Assign + PVALIDATE every page (launch-time acceptance sweep)."""
        tracer = self.tracer
        span = tracer.span("hw", "PVALIDATE_SWEEP", args={"pages": count}) \
            if tracer.enabled else NULL_SPAN
        with span:
            self.ledger.charge("pvalidate", self.cost.pvalidate * count)
            self._default.assigned = True
            self._default.validated = True
            for ent in self._entries.values():
                if not ent.shared:
                    ent.assigned = True
                    ent.validated = True
            self.generation += 1

    # -- instruction-level operations -----------------------------------------

    def rmpadjust(self, *, executing_vmpl: int, ppn: int, target_vmpl: int,
                  perms: Access, vmsa: bool = False) -> None:
        """``RMPADJUST``: set ``target_vmpl``'s permissions on page ``ppn``.

        Only a strictly more-privileged VMPL may adjust a level's
        permissions.  Raises :class:`InvalidInstruction` otherwise -- the
        paper's kernel-side attempt to lift its own restrictions is exactly
        this fault.
        """
        self._check_vmpl(executing_vmpl)
        self._check_vmpl(target_vmpl)
        self._check_ppn(ppn)
        # A level may only adjust strictly less-privileged levels, with one
        # architectural exception: VMPL-0 may target itself, which is how
        # an SVSM-style monitor creates VMPL-0 AP VMSAs.
        same_level_mon = executing_vmpl == 0 and target_vmpl == 0
        if target_vmpl <= executing_vmpl and not same_level_mon:
            raise InvalidInstruction(
                f"RMPADJUST from VMPL-{executing_vmpl} may not modify "
                f"VMPL-{target_vmpl} permissions")
        ent = self.entry(ppn)
        if not ent.assigned:
            raise NestedPageFault(
                f"RMPADJUST on unassigned page {ppn:#x}", gpa=ppn << 12,
                vmpl=executing_vmpl, access="rmpadjust")
        tracer = self.tracer
        span = tracer.span("hw", "RMPADJUST", vmpl=executing_vmpl,
                           args={"ppn": ppn, "target_vmpl": target_vmpl}) \
            if tracer.enabled else NULL_SPAN
        with span:
            self.ledger.charge("rmpadjust", self.cost.rmpadjust)
            ent.perms[target_vmpl] = perms
            ent.vmsa = vmsa
            self.generation += 1

    def pvalidate(self, *, executing_vmpl: int, ppn: int,
                  validate: bool) -> None:
        """``PVALIDATE``: flip a page's validated bit.

        Architecturally this runs at any VMPL, but a VMPL whose RMP
        permissions on the page are empty cannot meaningfully use it; Veil
        routes all PVALIDATE through VeilMon (VMPL-0) by *policy*, which the
        :mod:`repro.core.delegation` layer enforces.
        """
        self._check_vmpl(executing_vmpl)
        ent = self.entry(ppn)
        tracer = self.tracer
        span = tracer.span("hw", "PVALIDATE", vmpl=executing_vmpl,
                           args={"ppn": ppn, "validate": validate}) \
            if tracer.enabled else NULL_SPAN
        with span:
            self.ledger.charge("pvalidate", self.cost.pvalidate)
            if validate and not ent.assigned:
                raise NestedPageFault(
                    f"PVALIDATE on page {ppn:#x} not assigned to the guest",
                    gpa=ppn << 12, vmpl=executing_vmpl, access="pvalidate")
            ent.validated = validate
            self.generation += 1

    # -- hypervisor-side state transitions ------------------------------------

    def assign(self, ppn: int) -> None:
        """Hypervisor donates page ``ppn`` to the guest (pre-validation)."""
        ent = self.entry(ppn)
        ent.assigned = True
        ent.validated = False
        ent.shared = False
        self.generation += 1

    def unassign(self, ppn: int) -> None:
        """Hypervisor reclaims page ``ppn`` (guest must have shared it)."""
        ent = self.entry(ppn)
        ent.assigned = False
        ent.validated = False
        ent.vmsa = False
        ent.shared = False
        ent.perms = _default_perms()
        self.generation += 1

    def install_vmsa(self, ppn: int) -> None:
        """Mark page ``ppn`` as a sealed, guest-owned VMSA page.

        This is the PSP/VMENTER-side state transition backing VMSA
        creation: the page becomes assigned + validated + VMSA-marked in
        one step, so ``check_access`` seals it from every VMPL but 0.
        Guest-side VMSA creation goes through :meth:`rmpadjust` with
        ``vmsa=True`` instead; this gate exists so the hypervisor and
        boot flows never poke entry fields directly.
        """
        ent = self.entry(ppn)
        ent.assigned = True
        ent.validated = True
        ent.vmsa = True
        self.generation += 1

    def share(self, ppn: int) -> None:
        """Mark page ``ppn`` as a shared (unencrypted) page.

        Shared pages -- e.g. GHCBs and bounce buffers -- are readable and
        writable by both the guest (any VMPL) and the hypervisor, but never
        executable by the guest.
        """
        ent = self.entry(ppn)
        ent.assigned = False
        ent.validated = False
        ent.vmsa = False
        ent.shared = True
        ent.perms = _default_perms()
        self.generation += 1

    # -- access checking --------------------------------------------------------

    def check_access(self, *, ppn: int, vmpl: int, access: Access) -> None:
        """Raise #NPF unless ``vmpl`` may perform ``access`` on ``ppn``."""
        self._check_vmpl(vmpl)
        ent = self.peek(ppn)
        if ent.shared:
            if access & (Access.UEXEC | Access.SEXEC):
                raise NestedPageFault(
                    f"execute from shared page {ppn:#x}", gpa=ppn << 12,
                    vmpl=vmpl, access=access.name or str(access))
            return
        if not ent.assigned or not ent.validated:
            raise NestedPageFault(
                f"access to {'unassigned' if not ent.assigned else 'unvalidated'}"
                f" page {ppn:#x}", gpa=ppn << 12, vmpl=vmpl,
                access=access.name or str(access))
        if ent.vmsa and vmpl != 0:
            # VMSA pages are sealed from everything but VMPL-0 software.
            raise NestedPageFault(
                f"access to VMSA page {ppn:#x} from VMPL-{vmpl}",
                gpa=ppn << 12, vmpl=vmpl, access=access.name or str(access))
        if not ent.allows(vmpl, access):
            raise NestedPageFault(
                f"VMPL-{vmpl} lacks {access!r} on page {ppn:#x}",
                gpa=ppn << 12, vmpl=vmpl, access=access.name or str(access))

    # -- helpers ---------------------------------------------------------------

    def _check_ppn(self, ppn: int) -> None:
        if not 0 <= ppn < self.num_pages:
            raise IndexError(f"ppn {ppn:#x} outside RMP ({self.num_pages})")

    @staticmethod
    def _check_vmpl(vmpl: int) -> None:
        if not 0 <= vmpl < NUM_VMPLS:
            raise ValueError(f"invalid VMPL {vmpl}")
