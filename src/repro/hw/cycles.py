"""Cycle accounting for the transaction-level SEV-SNP simulator.

Every architectural operation charges a cost to a :class:`CycleLedger`.
Costs live in :class:`CostModel` and are calibrated against the paper's
measured microbenchmarks (Veil, ASPLOS'23, section 9):

* a hypervisor-relayed domain switch costs 7135 cycles (measured, section 9.1);
* a plain ``VMCALL`` exit on a non-SNP VM costs ~1100 cycles;
* Veil's boot-time RMPADJUST sweep over all guest pages accounts for >70%
  of a ~2 s boot-time increase on a 2 GB guest;
* a 24 KB module load/unload pays ~55k extra cycles in RMPADJUST updates.

The ledger tracks per-category totals so benchmark harnesses can produce
the paper's stacked breakdowns (e.g. Fig. 5 splits enclave overhead into
``Enclave-Exit`` and ``Syscall-Redirect``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


#: Nominal clock used only to render cycles as human-readable seconds.
CLOCK_HZ = 3_000_000_000


@dataclass(frozen=True)
class CostModel:
    """Calibrated per-operation cycle costs.

    The defaults reproduce the paper's ratios; tests may construct cheaper
    models (e.g. zero-cost) when timing is irrelevant.
    """

    # --- world switches -------------------------------------------------
    #: VMGEXIT + hypervisor handling + VMENTER on a *different* VMSA.
    #: Paper section 9.1: 7135 cycles per OS<->VeilMon switch.  The switch is
    #: charged as exit + enter halves so a hypervisor-terminated exit (no
    #: re-entry into a new domain) can be charged separately.
    vmgexit: int = 3000
    vmenter: int = 4135
    #: Plain VMCALL round trip on a non-SNP VM (paper: ~1100 cycles).
    vmcall: int = 1100
    #: Automatic exit (e.g. timer interrupt): no GHCB protocol.
    automatic_exit: int = 1600

    # --- ring switches / kernel entry ------------------------------------
    syscall_entry: int = 150     # SYSCALL/SYSRET pair
    interrupt_delivery: int = 600

    # --- memory system ----------------------------------------------------
    #: Per-byte cost of copying through the simulated memory system.  The
    #: paper's syscall-redirect overhead is dominated by argument deep
    #: copies, e.g. lighttpd copying 10 KB response bodies out of the
    #: enclave.
    copy_per_byte_x1000: int = 250        # 0.25 cycles/byte
    page_table_walk: int = 40
    tlb_flush: int = 500

    # --- SNP instructions ---------------------------------------------------
    #: RMPADJUST on one 4 KiB page.  Veil's boot performs two full-memory
    #: permission sweeps (VMPL-1 and VMPL-3); on a 2 GB guest (524288
    #: pages) the sweeps plus validation must come to a ~2 s (~6e9 cycle)
    #: boot-time increase with >70% of it in RMPADJUST (section 9.1).
    rmpadjust: int = 5200
    pvalidate: int = 800
    rdtsc: int = 30
    wrmsr: int = 100
    rdmsr: int = 100
    #: WBINVD cache writeback+invalidate (the section-10 eOPF-style
    #: side-channel mitigation executes this on enclave exits).
    wbinvd: int = 30_000

    # --- crypto (per byte / per op) -----------------------------------------
    sha256_per_byte_x1000: int = 4000     # 4 cycles/byte
    cipher_per_byte_x1000: int = 2000     # 2 cycles/byte
    signature_verify: int = 220_000
    signature_sign: int = 900_000

    def copy_cost(self, nbytes: int) -> int:
        """Cycle cost of copying ``nbytes`` through the memory system."""
        return (nbytes * self.copy_per_byte_x1000) // 1000

    def sha256_cost(self, nbytes: int) -> int:
        """Cycle cost of hashing ``nbytes``."""
        return (nbytes * self.sha256_per_byte_x1000) // 1000

    def cipher_cost(self, nbytes: int) -> int:
        """Cycle cost of encrypting ``nbytes``."""
        return (nbytes * self.cipher_per_byte_x1000) // 1000

    @property
    def domain_switch(self) -> int:
        """Full hypervisor-relayed domain switch (paper: 7135 cycles)."""
        return self.vmgexit + self.vmenter


#: Cost model with every charge set to zero; useful in unit tests that only
#: care about functional behaviour.
def free_cost_model() -> CostModel:
    """A cost model with every charge zeroed (functional tests)."""
    zeroed = {name: 0 for name in CostModel.__dataclass_fields__}
    return CostModel(**zeroed)


class ChargeHandle:
    """Pre-resolved charge target for one ledger category.

    The VCPU access path charges the same two categories
    (``page_table_walk``, ``copy``) on every guest memory access; going
    through :meth:`CycleLedger.charge` costs a string-keyed dict probe and
    a sign check per call.  A handle binds the ledger and its category
    bucket once so the per-access cost is two integer adds.  Handles
    survive :meth:`CycleLedger.reset` because the ledger clears its
    category counter in place rather than replacing it.

    Callers own the non-negativity of their costs: handles skip the
    negative-charge guard, so they are only handed to trusted simulator
    paths whose costs come from a :class:`CostModel`.
    """

    __slots__ = ("_ledger", "_bucket", "_category")

    def __init__(self, ledger: "CycleLedger", category: str):
        self._ledger = ledger
        self._bucket = ledger.by_category
        self._category = category

    def charge(self, cycles: int) -> None:
        """Add ``cycles`` (assumed non-negative) to the bound category."""
        self._ledger.total += cycles
        self._bucket[self._category] += cycles


@dataclass
class CycleLedger:
    """Accumulates cycles, bucketed by category.

    Categories are free-form strings; the benchmark harness relies on a few
    conventional names (``domain_switch``, ``copy``, ``rmpadjust``,
    ``compute``, ``syscall``, ``crypto``, ``exit``).
    """

    total: int = 0
    by_category: dict[str, int] = field(default_factory=Counter)

    def charge(self, category: str, cycles: int) -> None:
        """Add ``cycles`` under ``category``."""
        if cycles < 0:
            raise ValueError(f"negative charge: {cycles}")
        self.total += cycles
        self.by_category[category] += cycles

    def handle(self, category: str) -> ChargeHandle:
        """A :class:`ChargeHandle` bound to ``category`` on this ledger."""
        return ChargeHandle(self, category)

    def category(self, name: str) -> int:
        """Total charged under one category."""
        return self.by_category.get(name, 0)

    def snapshot(self) -> "LedgerSnapshot":
        """Immutable copy of the current totals."""
        return LedgerSnapshot(self.total, dict(self.by_category))

    def since(self, snap: "LedgerSnapshot") -> "LedgerSnapshot":
        """Delta between now and an earlier :meth:`snapshot`."""
        delta = {}
        for name, value in self.by_category.items():
            before = snap.by_category.get(name, 0)
            if value != before:
                delta[name] = value - before
        return LedgerSnapshot(self.total - snap.total, delta)

    def reset(self) -> None:
        """Zero every counter.

        Clears the category counter in place (never replaces it) so
        outstanding :class:`ChargeHandle` objects stay valid.
        """
        self.total = 0
        self.by_category.clear()


@dataclass(frozen=True)
class LedgerSnapshot:
    """Immutable view of a ledger at a point in time (or a delta)."""

    total: int
    by_category: dict

    def category(self, name: str) -> int:
        """Cycles this snapshot holds for one category."""
        return self.by_category.get(name, 0)

    def seconds(self, clock_hz: int = CLOCK_HZ) -> float:
        """Render the snapshot total as seconds at the clock."""
        return self.total / clock_hz


def cycles_to_seconds(cycles: int, clock_hz: int = CLOCK_HZ) -> float:
    """Render a cycle count as seconds at the nominal simulator clock."""
    return cycles / clock_hz
