"""Deterministic randomness for the simulated hardware stack.

The byte-identical-trace contract (veil-turbo / veil-chaos) forbids
ambient entropy anywhere a ledger or exported trace can see: two runs
with the same seed must agree bit for bit.  This module is the one
sanctioned randomness facility for those layers -- a hand-rolled
SplitMix64 stream, pinned here rather than delegated to
``random.Random`` so a replayed seed means the same bytes forever, not
"until the stdlib reshuffles".

Consumers: the kernel's ``getrandom`` syscall draws from a
:class:`DeterministicRandom` seeded at boot (modeling a virtio-rng whose
entropy is part of the measured launch state), and the chaos harness's
``SplitMix64`` is this generator re-exported (same constants, same
stream, so pre-existing fault-schedule seeds replay unchanged).

The ``crypto`` package intentionally does *not* use this: its default
key generation wants real entropy (``secrets``), and the flow baseline
(``FLOW_BASELINE.json``) carries the justified exceptions.  Parties
whose key material is *visible to the replayed transcript* -- the
monitor's DH pair rides in attestation replies over the chaos fabric --
derive their keys from stable identity instead
(:meth:`repro.crypto.DhKeyPair.from_seed`).
"""

from __future__ import annotations

__all__ = ["DeterministicRandom", "GETRANDOM_SEED"]

#: Boot-time seed for the kernel entropy pool.  Fixed: the simulated
#: machine's "hardware" RNG is part of the measured, replayable state.
GETRANDOM_SEED = 0x5EED_0FE1_1


class DeterministicRandom:
    """SplitMix64: a tiny, seed-stable PRNG independent of CPython.

    64-bit state, one addition and two xor-multiply mixes per output
    word (Steele et al., "Fast splittable pseudorandom number
    generators", OOPSLA 2014).  Not cryptographic -- it feeds simulation
    choices and the modeled entropy pool, never key material.
    """

    _MASK = (1 << 64) - 1

    def __init__(self, seed: int):
        self._state = seed & self._MASK

    def next_u64(self) -> int:
        """Next 64-bit output word."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & self._MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self._MASK
        return z ^ (z >> 31)

    def random(self) -> float:
        """Uniform float in [0, 1) with 53 bits of precision."""
        return (self.next_u64() >> 11) / float(1 << 53)

    def randrange(self, bound: int) -> int:
        """Uniform int in [0, bound); raises ``ValueError`` if empty."""
        if bound <= 0:
            raise ValueError(f"randrange bound {bound} must be > 0")
        return self.next_u64() % bound

    def token_bytes(self, count: int) -> bytes:
        """``count`` pseudorandom bytes (the ``getrandom`` backend)."""
        if count < 0:
            raise ValueError(f"byte count {count} must be >= 0")
        words = (count + 7) // 8
        blob = b"".join(self.next_u64().to_bytes(8, "little")
                        for _ in range(words))
        return blob[:count]
