"""Physical memory model: a flat array of 4 KiB pages.

Pages are allocated lazily (a zero page is materialized on first touch) so
multi-gigabyte guests are cheap to simulate.  All byte access goes through
:class:`PhysicalMemory`; protection checks live one layer up (the RMP and
the VCPU access path) -- this module is deliberately policy-free.
"""

from __future__ import annotations

from .cycles import CostModel, CycleLedger

PAGE_SIZE = 4096
PAGE_SHIFT = 12


def page_number(addr: int) -> int:
    """Physical page number containing byte address ``addr``."""
    return addr >> PAGE_SHIFT


def page_offset(addr: int) -> int:
    """Byte offset of ``addr`` within its page."""
    return addr & (PAGE_SIZE - 1)


def page_base(ppn: int) -> int:
    """First byte address of physical page ``ppn``."""
    return ppn << PAGE_SHIFT


def pages_spanned(addr: int, length: int) -> range:
    """Physical page numbers touched by ``[addr, addr+length)``."""
    if length <= 0:
        return range(0)
    first = page_number(addr)
    last = page_number(addr + length - 1)
    return range(first, last + 1)


class PhysicalMemory:
    """Byte-addressable physical memory with lazy page allocation."""

    def __init__(self, size_bytes: int, *, cost: CostModel | None = None,
                 ledger: CycleLedger | None = None):
        if size_bytes <= 0 or size_bytes % PAGE_SIZE:
            raise ValueError("memory size must be a positive page multiple")
        self.size = size_bytes
        self.num_pages = size_bytes // PAGE_SIZE
        self._pages: dict[int, bytearray] = {}
        self.cost = cost or CostModel()
        self.ledger = ledger or CycleLedger()

    # -- page-level access -------------------------------------------------

    def page(self, ppn: int) -> bytearray:
        """Backing store for page ``ppn`` (materializing zeros if fresh)."""
        self._check_ppn(ppn)
        buf = self._pages.get(ppn)
        if buf is None:
            buf = bytearray(PAGE_SIZE)
            self._pages[ppn] = buf
        return buf

    def page_is_materialized(self, ppn: int) -> bool:
        """Whether the page has backing storage yet."""
        return ppn in self._pages

    def zero_page(self, ppn: int) -> None:
        """Scrub a page's contents (e.g. before handing it to a new owner)."""
        self._check_ppn(ppn)
        self._pages[ppn] = bytearray(PAGE_SIZE)

    # -- byte-level access ---------------------------------------------------

    def read(self, addr: int, length: int) -> bytes:
        """Read ``length`` raw bytes; charges copy cost to the ledger."""
        self._check_range(addr, length)
        self.ledger.charge("copy", self.cost.copy_cost(length))
        if length == 0:
            return b""
        off = addr & (PAGE_SIZE - 1)
        if off + length <= PAGE_SIZE:
            # Intra-page fast path: one zero-copy slice off the backing
            # page (reads never materialize pages -- a fresh page is zeros
            # either way).
            buf = self._pages.get(addr >> PAGE_SHIFT)
            if buf is None:
                self._check_ppn(addr >> PAGE_SHIFT)
                return bytes(length)
            return bytes(memoryview(buf)[off:off + length])
        out = bytearray(length)
        pos = 0
        while pos < length:
            cur = addr + pos
            ppn = page_number(cur)
            off = page_offset(cur)
            chunk = min(length - pos, PAGE_SIZE - off)
            out[pos:pos + chunk] = self.page(ppn)[off:off + chunk]
            pos += chunk
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write raw bytes; charges copy cost to the ledger."""
        self._check_range(addr, len(data))
        self.ledger.charge("copy", self.cost.copy_cost(len(data)))
        if not data:
            return
        off = addr & (PAGE_SIZE - 1)
        if off + len(data) <= PAGE_SIZE:
            self.page(addr >> PAGE_SHIFT)[off:off + len(data)] = data
            return
        pos = 0
        while pos < len(data):
            cur = addr + pos
            ppn = page_number(cur)
            off = page_offset(cur)
            chunk = min(len(data) - pos, PAGE_SIZE - off)
            self.page(ppn)[off:off + chunk] = data[pos:pos + chunk]
            pos += chunk

    # -- page-granular raw access (VCPU fast path) ----------------------------

    def page_bytes(self, ppn: int, offset: int, length: int) -> bytes:
        """Uncharged intra-page read: ``length`` bytes at ``offset`` in
        page ``ppn``.

        Used by the VCPU access path, which translates and charges per
        spanned virtual page itself.  The caller guarantees
        ``offset + length <= PAGE_SIZE``.
        """
        buf = self._pages.get(ppn)
        if buf is None:
            self._check_ppn(ppn)
            return bytes(length)
        return bytes(memoryview(buf)[offset:offset + length])

    def page_write(self, ppn: int, offset: int, data: bytes) -> None:
        """Uncharged intra-page write (VCPU fast-path counterpart of
        :meth:`page_bytes`); materializes the page if fresh."""
        buf = self._pages.get(ppn)
        if buf is None:
            self._check_ppn(ppn)
            buf = bytearray(PAGE_SIZE)
            self._pages[ppn] = buf
        buf[offset:offset + len(data)] = data

    # -- helpers --------------------------------------------------------------

    def _check_ppn(self, ppn: int) -> None:
        if not 0 <= ppn < self.num_pages:
            raise IndexError(f"ppn {ppn:#x} outside physical memory "
                             f"({self.num_pages} pages)")

    def _check_range(self, addr: int, length: int) -> None:
        if length < 0:
            raise ValueError("negative length")
        if addr < 0 or addr + length > self.size:
            raise IndexError(f"range [{addr:#x}, {addr + length:#x}) outside "
                             f"physical memory of {self.size:#x} bytes")
