"""Guest–Hypervisor Communication Block (GHCB).

A GHCB is one *shared* (unencrypted) physical page through which a VCPU
passes explicit state to the hypervisor on non-automatic exits.  The guest
publishes the GHCB's location by writing its physical address to the GHCB
MSR; the hypervisor reads that MSR at exit time to find the block.

Messages are structured records serialized into the page bytes, so both
sides genuinely communicate through the simulated shared memory (and pay
its copy costs) rather than through Python object references.
"""

from __future__ import annotations

import json

from ..errors import SimulationError
from .memory import PAGE_SIZE, PhysicalMemory, page_base

#: Byte length prefix for serialized messages.
_LEN_BYTES = 4

#: Shared encoder (veil-warp): ``json.dumps(message, sort_keys=True)``
#: constructs a fresh encoder per call; reusing one is byte-identical
#: output on the GHCB hot path (every hypercall serializes twice).
_ENCODER = json.JSONEncoder(sort_keys=True)


class Ghcb:
    """Helper view over a shared physical page used as a GHCB."""

    def __init__(self, ppn: int):
        self.ppn = ppn

    @property
    def gpa(self) -> int:
        return page_base(self.ppn)

    # -- message passing ----------------------------------------------------

    def write_message(self, mem: PhysicalMemory, message: dict) -> None:
        """Serialize ``message`` into the GHCB page."""
        blob = _ENCODER.encode(message).encode("utf-8")
        if len(blob) + _LEN_BYTES > PAGE_SIZE:
            raise SimulationError(
                f"GHCB message of {len(blob)} bytes exceeds one page")
        mem.write(self.gpa, len(blob).to_bytes(_LEN_BYTES, "little") + blob)

    def read_message(self, mem: PhysicalMemory) -> dict:
        """Deserialize the current message from the GHCB page."""
        length = int.from_bytes(mem.read(self.gpa, _LEN_BYTES), "little")
        if length == 0 or length > PAGE_SIZE - _LEN_BYTES:
            raise SimulationError(f"GHCB holds no valid message ({length})")
        blob = mem.read(self.gpa + _LEN_BYTES, length)
        return json.loads(blob.decode("utf-8"))

    def clear(self, mem: PhysicalMemory) -> None:
        """Invalidate the current message."""
        mem.write(self.gpa, b"\x00" * _LEN_BYTES)
