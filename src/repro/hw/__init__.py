"""Simulated AMD SEV-SNP hardware substrate.

This package models the architectural mechanisms Veil depends on:

* :mod:`~repro.hw.memory` -- physical memory in 4 KiB pages;
* :mod:`~repro.hw.rmp` -- the Reverse Map table with per-VMPL permissions,
  ``RMPADJUST`` and ``PVALIDATE``;
* :mod:`~repro.hw.vmsa` -- sealed VM Save Areas with permanent VMPLs;
* :mod:`~repro.hw.vcpu` -- VCPU instances multiplexed on physical cores,
  with fully checked memory access paths;
* :mod:`~repro.hw.ghcb` -- the shared guest-hypervisor communication block;
* :mod:`~repro.hw.pagetable` -- guest page tables (CPL-level policy);
* :mod:`~repro.hw.cycles` -- the calibrated cycle cost model;
* :mod:`~repro.hw.rng` -- the seed-stable entropy source (SplitMix64);
* :mod:`~repro.hw.platform` -- :class:`~repro.hw.platform.SevSnpMachine`.
"""

from .cycles import CLOCK_HZ, CostModel, CycleLedger, LedgerSnapshot, \
    cycles_to_seconds, free_cost_model
from .ghcb import Ghcb
from .memory import PAGE_SIZE, PhysicalMemory, page_base, page_number
from .pagetable import GuestPageTable, PageFault, Pte
from .platform import FrameAllocator, SevSnpMachine
from .rmp import (Access, DOMAIN_NAMES, NUM_VMPLS, Rmp, RmpEntry,
                  VMPL_ENC, VMPL_MON, VMPL_SER, VMPL_UNT, vmpl_name)
from .rng import DeterministicRandom, GETRANDOM_SEED
from .vcpu import VirtualCpu
from .vmsa import GPR_NAMES, RegisterFile, Vmsa

__all__ = [
    "CLOCK_HZ", "CostModel", "CycleLedger", "LedgerSnapshot",
    "cycles_to_seconds", "free_cost_model", "Ghcb", "PAGE_SIZE",
    "PhysicalMemory", "page_base", "page_number", "GuestPageTable",
    "PageFault", "Pte", "FrameAllocator", "SevSnpMachine", "Access",
    "NUM_VMPLS", "Rmp", "RmpEntry", "VMPL_ENC", "VMPL_MON", "VMPL_SER",
    "VMPL_UNT", "DOMAIN_NAMES", "vmpl_name", "VirtualCpu", "GPR_NAMES",
    "RegisterFile", "Vmsa", "DeterministicRandom", "GETRANDOM_SEED",
]
