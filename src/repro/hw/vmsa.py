"""VM Save Area (VMSA): the sealed per-VCPU-instance register state.

Each VCPU *instance* owns one VMSA, stored in a guest physical page whose
RMP entry carries the ``vmsa`` flag (making it inaccessible to everything
except VMPL-0 software and the hardware's own save/restore path).

The VMPL recorded at VMSA creation is permanent -- this is the hardware
property Veil's replicated-VCPU design (section 5.2) is built around.
"""

from __future__ import annotations

from dataclasses import dataclass, field

GPR_NAMES = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)


def _zero_gprs() -> dict[str, int]:
    return {name: 0 for name in GPR_NAMES}


@dataclass
class RegisterFile:
    """Architectural register state saved and restored at world switches."""

    rip: int = 0
    cpl: int = 0
    cr3: int = 0                     # ppn of the active page-table root
    gprs: dict[str, int] = field(default_factory=_zero_gprs)
    ghcb_msr: int = 0                # GHCB location MSR (gpa)
    efer_sce: bool = True            # syscall enable; illustrative only

    def copy(self) -> "RegisterFile":
        """Deep copy of the register state."""
        return RegisterFile(rip=self.rip, cpl=self.cpl, cr3=self.cr3,
                            gprs=dict(self.gprs), ghcb_msr=self.ghcb_msr,
                            efer_sce=self.efer_sce)


@dataclass
class Vmsa:
    """A VM Save Area: (vcpu_id, vmpl) plus the saved register file.

    ``vmpl`` is immutable after construction (enforced by convention and by
    tests); the hardware model never exposes a mutation path.
    """

    vcpu_id: int
    vmpl: int
    ppn: int                          # physical page backing this VMSA
    regs: RegisterFile = field(default_factory=RegisterFile)
    #: True while the instance is live on a physical VCPU (its register
    #: state is then *in* the CPU, not the VMSA).
    running: bool = False

    def save(self, regs: RegisterFile) -> None:
        """Hardware path: seal the given register state into the VMSA."""
        self.regs = regs.copy()
        self.running = False

    def restore(self) -> RegisterFile:
        """Hardware path: load register state out of the VMSA."""
        self.running = True
        return self.regs.copy()
