"""veil-warp: process-parallel fleet + bulk-copy fast paths.

The warp subsystem runs the Veil fleet with replicas sharded across
worker processes while keeping every cycle ledger, trace, and telemetry
stream deterministic and -- for ledgers -- identical to the classic
in-process :func:`~repro.cluster.fleet.run_cluster`.  See
``docs/PERFORMANCE.md`` (veil-warp section) for the design and the
parity contract, and :mod:`repro.knobs` for the ``VEIL_WARP`` switch
gating the bulk-copy fast paths.
"""

from .fleet import ReplicaHandle, WarpFleet, default_workers, run_warp
from .merge import (MergedTrace, merge_events, merge_registries,
                    merge_tracers)
from .shard import InlineShard, ProcessShard, ShardHost, ShardNet

__all__ = [
    "ReplicaHandle",
    "WarpFleet",
    "default_workers",
    "run_warp",
    "MergedTrace",
    "merge_events",
    "merge_registries",
    "merge_tracers",
    "InlineShard",
    "ProcessShard",
    "ShardHost",
    "ShardNet",
]
