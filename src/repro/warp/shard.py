"""Worker side of the process-parallel fleet.

A warp worker hosts a shard of the fleet's :class:`ClusterReplica`
CVMs.  The crucial invariant is **where cycles are charged**: the
canonical fabric (and with it every ``net`` charge, every fabric
metric, every scope hop, every chaos verdict) lives in the *parent*
process against per-replica mirror ledgers.  Inside a worker, replicas
are attached to a :class:`ShardNet` that charges **nothing** -- it only
queues inbound messages the parent forwarded and captures the outbound
messages a pump produced.  A worker replica's own ledger therefore
accrues pure compute, and after every pump the worker ships the compute
delta back so the parent can fold it into the mirror and replay the
outbound messages on the canonical fabric.  The mirror ends up with
exactly the classic ledger: rx-net + compute + tx-net, category for
category.

Workers communicate over a ``multiprocessing`` pipe with a five-verb
protocol (``boot`` happens implicitly at spawn): ``pump``, ``collect``,
``exit``.  :class:`InlineShard` is the in-process twin -- the same
:class:`ShardHost` without a process boundary -- used when only one CPU
is available and by the parity tests as the reference execution.
"""

from __future__ import annotations

import typing
from collections import deque

from ..hw.cycles import CycleLedger

if typing.TYPE_CHECKING:
    from ..cluster.replica import ClusterReplica


class ShardNet:
    """A charge-free fabric stub for worker-hosted replicas.

    Implements the :class:`~repro.cluster.net.InterHostNetwork` surface
    a :class:`ClusterReplica` touches -- ``attach`` / ``endpoint`` /
    ``send`` / ``recv`` / ``pending`` -- but never charges a ledger:
    the parent's canonical fabric already charged (or will charge) both
    endpoints for every message that crosses it.  Outbound messages are
    captured per source for the parent to replay.
    """

    class _Endpoint:
        __slots__ = ("name", "ledger", "inbox")

        def __init__(self, name: str, ledger):
            self.name = name
            self.ledger = ledger
            self.inbox: deque = deque()

    def __init__(self):
        self._endpoints: dict[str, ShardNet._Endpoint] = {}
        #: Captured outbound messages per source replica, in send order.
        self.outbound: dict[str, list] = {}

    def attach(self, name: str, ledger) -> "ShardNet._Endpoint":
        """Register a local replica endpoint (ledger never charged)."""
        endpoint = ShardNet._Endpoint(name, ledger)
        self._endpoints[name] = endpoint
        self.outbound[name] = []
        return endpoint

    def endpoint(self, name: str) -> "ShardNet._Endpoint":
        """The endpoint registered under ``name``."""
        return self._endpoints[name]

    def deliver(self, dst: str, src: str, payload: bytes) -> None:
        """Queue a parent-forwarded message for a local replica."""
        self._endpoints[dst].inbox.append((src, payload))

    def send(self, src: str, dst: str, payload: bytes) -> None:
        """Capture an outbound message (no charge; parent replays it)."""
        self.outbound[src].append((dst, bytes(payload)))

    def recv(self, dst: str) -> tuple:
        """Pop the oldest queued ``(src, payload)`` for ``dst``."""
        return self._endpoints[dst].inbox.popleft()

    def pending(self, dst: str) -> int:
        """Messages queued for ``dst``."""
        return len(self._endpoints[dst].inbox)

    def take_outbound(self, src: str) -> list:
        """Pop-and-return everything ``src`` sent since the last take."""
        captured = self.outbound[src]
        self.outbound[src] = []
        return captured


class ShardHost:
    """Boots and drives one shard of replicas (runs inside a worker)."""

    def __init__(self, specs: list):
        from ..cluster.replica import ClusterReplica
        from ..trace.tracer import Tracer
        self.net = ShardNet()
        self.replicas: dict[str, "ClusterReplica"] = {}
        self.tracers: dict[str, "Tracer"] = {}
        self._marks: dict[str, object] = {}
        for spec in specs:
            # One tracer per replica, clocked (by the machine it boots)
            # on that replica's own compute-only ledger: its event
            # stream is a pure function of the replica's message
            # sequence, independent of sharding.  Untraced runs (the
            # classic default) skip recording entirely so warp never
            # pays observation costs the classic fleet would not.
            tracer = Tracer() if spec.get("trace") else None
            replica = ClusterReplica(
                spec["index"], self.net, workload=spec["workload"],
                shielded=spec["shielded"],
                memory_bytes=spec["memory_bytes"],
                num_cores=spec["num_cores"],
                log_storage_pages=spec["log_storage_pages"],
                tracer=tracer, tampered=spec["tampered"])
            self.replicas[replica.name] = replica
            if tracer is not None:
                self.tracers[replica.name] = tracer
            self._marks[replica.name] = CycleLedger().snapshot()

    def _delta(self, name: str) -> dict:
        """Compute delta (by category) since the last report, and mark."""
        replica = self.replicas[name]
        delta = replica.ledger.since(self._marks[name])
        self._marks[name] = replica.ledger.snapshot()
        return dict(delta.by_category)

    def boot_report(self) -> dict:
        """Per-replica boot-time compute for the parent's mirrors."""
        return {name: {"delta": self._delta(name), "outbound": []}
                for name in self.replicas}

    def pump(self, inbound: dict) -> dict:
        """Deliver forwarded messages and pump each named replica.

        ``inbound`` maps replica name -> list of (src, wire) messages.
        Replicas are pumped in index order regardless of dict order.
        Returns per-replica ``{"delta": {...}, "outbound": [...]}``.
        """
        report = {}
        for name in sorted(inbound, key=lambda n: self.replicas[n].index):
            replica = self.replicas[name]
            for src, wire in inbound[name]:
                self.net.deliver(name, src, wire)
            replica.pump()
            report[name] = {"delta": self._delta(name),
                            "outbound": self.net.take_outbound(name)}
        return report

    def collect(self) -> dict:
        """Final per-replica state for the parent's result assembly."""
        from ..trace.metrics import MetricsRegistry
        out = {}
        for name, replica in self.replicas.items():
            tracer = self.tracers.get(name)
            out[name] = {
                "requests_served": replica.requests_served,
                "log_entries": replica.log_entry_count(),
                "crashes": replica.crashes,
                "ledger_total": replica.ledger.total,
                "events": list(tracer.events) if tracer else [],
                "metrics": tracer.metrics if tracer
                else MetricsRegistry(),
                "recorded": tracer.recorded if tracer else 0,
                "dropped": tracer.dropped if tracer else 0,
            }
        return out


def _worker_main(conn, specs: list) -> None:
    """Forked-child command loop: serve the parent until ``exit``."""
    host = ShardHost(specs)
    conn.send(("ready", host.boot_report()))
    while True:
        verb, payload = conn.recv()
        if verb == "pump":
            conn.send(("pumped", host.pump(payload)))
        elif verb == "collect":
            conn.send(("collected", host.collect()))
        elif verb == "exit":
            conn.close()
            return
        else:                                      # pragma: no cover
            conn.send(("error", f"unknown verb {verb!r}"))


class ProcessShard:
    """Parent-side handle to one forked worker process.

    ``fork`` start method only: children must inherit the parent's
    warmed key caches (platform / module signing keys) so every worker
    boots byte-identical CVMs.
    """

    def __init__(self, specs: list):
        import multiprocessing
        context = multiprocessing.get_context("fork")
        self._conn, child_conn = context.Pipe()
        self._proc = context.Process(
            target=_worker_main, args=(child_conn, specs), daemon=True)
        self._proc.start()
        child_conn.close()
        self._ready: "dict | None" = None

    def wait_ready(self) -> dict:
        """Block until the shard booted; returns the boot report."""
        if self._ready is None:
            verb, payload = self._conn.recv()
            assert verb == "ready", verb
            self._ready = payload
        return self._ready

    # Split request/response lets the fleet issue pumps to every worker
    # first and gather afterwards -- that is the parallel section.

    def pump_send(self, inbound: dict) -> None:
        """Issue a pump request without waiting for the reply."""
        self._conn.send(("pump", inbound))

    def pump_recv(self) -> dict:
        """Block for the pump report issued by :meth:`pump_send`."""
        verb, payload = self._conn.recv()
        assert verb == "pumped", verb
        return payload

    def pump(self, inbound: dict) -> dict:
        """Synchronous pump round trip (send + receive)."""
        self.pump_send(inbound)
        return self.pump_recv()

    def collect(self) -> dict:
        """Fetch the shard's final per-replica state."""
        self._conn.send(("collect", None))
        verb, payload = self._conn.recv()
        assert verb == "collected", verb
        return payload

    def close(self) -> None:
        """Ask the worker to exit; terminate it if it lingers."""
        try:
            self._conn.send(("exit", None))
        except (BrokenPipeError, OSError):        # pragma: no cover
            pass
        self._proc.join(timeout=10)
        if self._proc.is_alive():                 # pragma: no cover
            self._proc.terminate()


class InlineShard:
    """In-process twin of :class:`ProcessShard` (no fork, same protocol).

    The zero-worker fallback for single-CPU machines, and the reference
    execution the parity tests compare forked runs against.
    """

    def __init__(self, specs: list):
        self._host = ShardHost(specs)
        self._pending: "dict | None" = None

    def wait_ready(self) -> dict:
        """Boot already happened in-process; return its report."""
        return self._host.boot_report()

    def pump_send(self, inbound: dict) -> None:
        """Run the pump now; stash the report for :meth:`pump_recv`."""
        self._pending = self._host.pump(inbound)

    def pump_recv(self) -> dict:
        """Return the report stashed by :meth:`pump_send`."""
        report, self._pending = self._pending, None
        return report

    def pump(self, inbound: dict) -> dict:
        """Deliver + pump synchronously (no process boundary)."""
        return self._host.pump(inbound)

    def collect(self) -> dict:
        """Final per-replica state straight from the host."""
        return self._host.collect()

    def close(self) -> None:
        """Nothing to tear down in-process."""
        pass
