"""Process-parallel fleet orchestration (the warp twin of ``run_cluster``).

The parent process owns everything that must be globally ordered: the
canonical fabric (every ``net`` charge, chaos verdict, scope hop, and
fabric metric happens here), the front end, the auditor, and one
**mirror ledger** per replica.  Workers own the expensive part -- the
replica CVMs themselves -- and report per-pump compute deltas that the
parent folds into the mirrors.  The charge flow is exact: a mirror
accrues rx-net (canonical fabric, at send time), compute (worker delta),
and tx-net (canonical fabric, when the parent replays the replica's
outbound), which is precisely what the classic in-process replica ledger
accrues.  Final per-host ledgers are therefore identical -- category for
category -- to a classic :func:`~repro.cluster.fleet.run_cluster` run,
across any worker count (a tested invariant).

Parallelism comes from two phases:

* **boot** -- each worker boots its shard of CVMs concurrently (boot
  dominates cold fleet start);
* **attestation** -- the handshake is run split-phase (stage 1 for
  every replica, one batched pump, stage 2 for every replica, ...), so
  replica-side report generation -- dominated by the 900k-cycle RSA
  sign -- runs on every worker at once.

The drive and audit phases run the *unmodified* ``FrontEnd`` /
``FleetAuditor`` against :class:`ReplicaHandle` objects: the request
path, retry/quarantine machinery, and chained-log verification are the
same code as the classic fleet, which is what keeps warp inside the
determinism contract instead of re-implementing it.
"""

from __future__ import annotations

import os
import typing

from ..cluster.attest import AttestedLink, FleetVerifier, RejectedHandshake
from ..cluster.auditor import FleetAuditor
from ..cluster.fleet import ClusterConfig, ClusterResult, FleetClock
from ..cluster.frontend import FrontEnd
from ..cluster.net import InterHostNetwork
from ..cluster.replica import expected_fleet_measurement
from ..core import VeilConfig
from ..core.boot import module_signing_key
from ..errors import AttestationError
from ..hv.attestation import platform_signing_key
from ..hw.cycles import CycleLedger
from ..scope.collector import NULL_SCOPE
from ..trace.metrics import MetricsRegistry
from ..trace.tracer import NULL_TRACER
from .merge import MergedTrace, merge_tracers
from .shard import InlineShard, ProcessShard

if typing.TYPE_CHECKING:
    from ..cluster.auditor import FleetAuditReport


def default_workers(replicas: int) -> int:
    """Worker count when the caller does not choose: one per CPU up to
    one per replica, and 0 (inline, no fork) on single-CPU machines
    where process hops cost latency and buy no parallelism."""
    cpus = os.cpu_count() or 1
    if cpus <= 1:
        return 0
    return min(cpus, replicas)


class ReplicaHandle:
    """Parent-side stand-in for a worker-hosted replica.

    Quacks like :class:`~repro.cluster.replica.ClusterReplica` exactly
    as far as the front end, verifier, and auditor touch one: ``name``,
    ``index``, ``alive``, ``net``, ``ledger`` (the mirror), ``tracer``,
    and ``pump()``.  A pump forwards the parent-side inbox to the
    worker, folds the returned compute delta into the mirror, and
    replays the replica's outbound messages on the canonical fabric.
    """

    def __init__(self, index: int, net, mirror: CycleLedger, shard,
                 tracer):
        self.index = index
        self.name = f"replica{index}"
        self.net = net
        self._mirror = mirror
        self._shard = shard
        self.tracer = tracer
        #: Warp does not model replica crashes (the chaos runner drives
        #: those in-process); the fabric-level faults all apply.
        self.alive = True

    @property
    def ledger(self) -> CycleLedger:
        return self._mirror

    def drain_inbox(self) -> list:
        """Pop every parent-side queued message bound for this replica."""
        inbox = self.net.endpoint(self.name).inbox
        messages = list(inbox)
        inbox.clear()
        return messages

    def apply(self, report: dict) -> None:
        """Fold one pump report: compute delta, then outbound replay.

        Within a single pump the classic replica interleaves compute
        and reply-tx per message; folding all compute first and then
        replaying preserves the per-message order for single-message
        pumps (the entire non-chaos protocol) and the charge *set*
        always.
        """
        for category in sorted(report["delta"]):
            self._mirror.charge(category, report["delta"][category])
        for dst, wire in report["outbound"]:
            self.net.send(self.name, dst, wire)

    def pump(self) -> int:
        """Synchronous pump round-trip (the drive/audit-phase path)."""
        report = self._shard.pump({self.name: self.drain_inbox()})
        payload = report[self.name]
        self.apply(payload)
        return len(payload["outbound"])


class WarpFleet:
    """A fleet with worker-hosted replicas and parent-side control."""

    def __init__(self, config: ClusterConfig, *, workers: int | None = None,
                 tracer=None, net: InterHostNetwork | None = None,
                 scope=None):
        from ..trace.tracer import default_tracer
        self.config = config
        if tracer is None:
            tracer = default_tracer()
        self.tracer = tracer or NULL_TRACER
        self.scope = scope if scope is not None else NULL_SCOPE
        self.net = net if net is not None else InterHostNetwork(
            cost=config.net_cost, tracer=tracer)
        if scope is not None:
            self.net.scope = scope
        # Deterministic forking: children must inherit the cached
        # platform/module signing keys (and anything the reference
        # measurement computation warms) so every worker boots CVMs
        # byte-identical to an in-process boot.
        platform_signing_key()
        module_signing_key()
        reference = expected_fleet_measurement(VeilConfig(
            memory_bytes=config.memory_bytes,
            num_cores=config.num_cores,
            log_storage_pages=config.log_storage_pages))
        if workers is None:
            workers = default_workers(config.replicas)
        self.workers_used = max(0, min(workers, config.replicas))
        specs = [{
            "index": index,
            "workload": config.workload,
            "shielded": config.shielded,
            "memory_bytes": config.memory_bytes,
            "num_cores": config.num_cores,
            "log_storage_pages": config.log_storage_pages,
            "tampered": index in config.tampered,
            "trace": self.tracer is not NULL_TRACER,
        } for index in range(config.replicas)]
        if self.workers_used == 0:
            shard_specs = [specs]
            shard_type = InlineShard
        else:
            shard_specs = [specs[shard::self.workers_used]
                           for shard in range(self.workers_used)]
            shard_type = ProcessShard
        # Spawn every shard before waiting on any: forked workers boot
        # their CVMs concurrently (the parallel section of cold start).
        self.shards = [shard_type(shard) for shard in shard_specs
                       if shard]
        self.handles: dict[str, ReplicaHandle] = {}
        self._shard_of: dict[str, object] = {}
        for shard, shard_spec in zip(self.shards, shard_specs):
            for spec in shard_spec:
                mirror = CycleLedger()
                name = f"replica{spec['index']}"
                self.net.attach(name, mirror)
                handle = ReplicaHandle(spec["index"], self.net, mirror,
                                       shard, self.tracer)
                self.handles[name] = handle
                self._shard_of[name] = shard
        boot_reports = {}
        for shard in self.shards:
            boot_reports.update(shard.wait_ready())
        for name in self._index_order(boot_reports):
            self.handles[name].apply(boot_reports[name])
        self.frontend = FrontEnd(self.net, policy=config.policy,
                                 tracer=tracer)
        self.frontend.scope = self.scope
        self.auditor = FleetAuditor(self.net, tracer=tracer)
        self.verifier = FleetVerifier(
            expected_measurement=reference,
            platform_public=platform_signing_key().public,
            ledger=self.frontend.ledger, tracer=tracer)
        self.links: dict[str, AttestedLink] = {}
        self.rejected: list[RejectedHandshake] = []
        self.frontend.reattest = self._reattest
        clock = FleetClock([h.ledger for h in self.handles.values()])
        clock.add(self.frontend.ledger)
        clock.add(self.auditor.ledger)
        self.clock = clock
        self.tracer.attach_ledger(clock)
        self.scope.attach_clock(clock)
        self._collected: "dict | None" = None

    # -- plumbing --------------------------------------------------------

    def _index_order(self, names) -> list:
        return sorted(names, key=lambda n: self.handles[n].index)

    def _pump_all(self, names: list,
                  fe_spent: "dict | None" = None) -> None:
        """Batched pump: issue to every shard, then gather and apply.

        The issue/gather split is the parallel section -- every worker
        computes its shard's pumps at once.  Application (delta fold +
        outbound replay) runs in replica index order so fabric charges
        land deterministically regardless of sharding.  When
        ``fe_spent`` is given, front-end rx cycles from each replica's
        replay are attributed to that replica (handshake accounting).
        """
        by_shard: dict = {}
        for name in self._index_order(names):
            by_shard.setdefault(id(self._shard_of[name]), (
                self._shard_of[name], {}))[1][name] = \
                self.handles[name].drain_inbox()
        ordered = [by_shard[key] for key in by_shard]
        for shard, inbound in ordered:
            shard.pump_send(inbound)
        reports: dict = {}
        for shard, _inbound in ordered:
            reports.update(shard.pump_recv())
        fe_ledger = self.frontend.ledger
        for name in self._index_order(reports):
            before = fe_ledger.total
            self.handles[name].apply(reports[name])
            if fe_spent is not None:
                fe_spent[name] += fe_ledger.total - before

    def _split_frontend_inbox(self) -> dict:
        """Drain the front end's inbox into per-source buckets.

        Batched pumps interleave every replica's replies in the front
        end's inbox; the sequential handshake consumer expects only the
        current replica's traffic, so stages re-feed one bucket at a
        time.
        """
        inbox = self.net.endpoint(self.frontend.name).inbox
        buckets: dict[str, list] = {}
        while inbox:
            src, wire = inbox.popleft()
            buckets.setdefault(src, []).append((src, wire))
        return buckets

    def _reattest(self, name: str) -> AttestedLink:
        """Front-end heal hook: classic sequential handshake against
        the handle (re-attestation is rare; no batching needed)."""
        link = self.verifier.establish(self.handles[name],
                                       self.frontend.name)
        self.links[name] = link
        return link

    # -- phases ----------------------------------------------------------

    def attest_all(self) -> None:
        """Split-phase handshake across the whole fleet.

        Stage boundaries are fleet-wide: every replica's report is
        generated in one batched pump (replica-side RSA signing runs on
        all workers concurrently), then verified sequentially in index
        order.  Charges per replica are the classic handshake's, and
        ``handshake_cycles`` attributes front-end and mirror deltas
        exactly as the sequential flow does.
        """
        fe = self.frontend
        verifier = self.verifier
        names = self._index_order(self.handles)
        fe_spent = {name: 0 for name in names}
        mirror_before = {name: self.handles[name].ledger.total
                         for name in names}
        spans: dict = {}
        users: dict = {}
        # Stage 1: demand a report from everyone.
        for name in names:
            span = self.tracer.span("cluster", "handshake",
                                    args={"replica": name})
            span.__enter__()
            spans[name] = span
            before = fe.ledger.total
            users[name] = verifier.handshake_begin(self.net, fe.name,
                                                   name)
            fe_spent[name] += fe.ledger.total - before
        self._pump_all(names, fe_spent)
        # Stage 2: verify reports, send our DH public value.
        buckets = self._split_frontend_inbox()
        keys: dict = {}
        reports: dict = {}
        active: list = []
        fe_inbox = self.net.endpoint(fe.name).inbox
        for name in names:
            fe_inbox.extend((src, wire)
                            for src, wire in buckets.get(name, []))
            before = fe.ledger.total
            try:
                reports[name], keys[name] = verifier.handshake_verify(
                    self.net, fe.name, name, users[name], self.tracer)
            except AttestationError as refused:
                spans.pop(name).__exit__(None, None, None)
                self.rejected.append(
                    RejectedHandshake(replica=name, reason=str(refused)))
            else:
                fe_spent[name] += fe.ledger.total - before
                active.append(name)
            fe_inbox.clear()
        if active:
            self._pump_all(active, fe_spent)
        # Stage 3: consume install acks, admit the verified.
        buckets = self._split_frontend_inbox()
        for name in active:
            fe_inbox.extend((src, wire)
                            for src, wire in buckets.get(name, []))
            handshake_cycles = (fe_spent[name] +
                                self.handles[name].ledger.total -
                                mirror_before[name])
            try:
                link = verifier.handshake_complete(
                    self.net, fe.name, name, reports[name], keys[name],
                    handshake_cycles)
            except AttestationError as refused:
                spans.pop(name).__exit__(None, None, None)
                self.rejected.append(
                    RejectedHandshake(replica=name, reason=str(refused)))
                fe_inbox.clear()
                continue
            fe_inbox.clear()
            spans.pop(name).__exit__(None, None, None)
            self.tracer.metrics.observe("handshake_cycles", name,
                                        handshake_cycles)
            self.tracer.metrics.count("handshake_ok", name)
            self.links[name] = link
            fe.admit(link, self.handles[name])

    def drive(self, requests: int) -> int:
        """Closed-loop client, identical to the classic fleet's."""
        config = self.config
        for i in range(requests):
            key = f"key{i % config.keyspace}"
            if config.workload == "memcached":
                op = "set" if i % config.set_every == 0 else "get"
                payload = {"op": op, "key": key}
            else:
                payload = {"op": "insert", "key": key}
            self.frontend.request(payload)
        return sum(self.frontend.routed.values())

    def audit_all(self) -> "FleetAuditReport":
        """Unmodified fleet audit sweep over the attested links."""
        ordered = [self.links[n] for n in self._index_order(self.links)]
        return self.auditor.sweep(ordered, self.handles)

    # -- teardown / results ----------------------------------------------

    def collect(self) -> dict:
        """Gather final per-replica state (events, metrics, counters)."""
        if self._collected is None:
            collected: dict = {}
            for shard in self.shards:
                collected.update(shard.collect())
            self._collected = collected
        return self._collected

    def close(self) -> None:
        """Shut down worker processes (idempotent)."""
        for shard in self.shards:
            shard.close()
        self.shards = []

    def merged_trace(self) -> MergedTrace:
        """Fleet-wide trace: replica streams + parent stream, totally
        ordered independent of sharding (see :mod:`repro.warp.merge`)."""
        collected = self.collect()
        replica_tracers = [
            MergedTrace(events=list(collected[name]["events"]),
                        metrics=collected[name]["metrics"],
                        recorded=collected[name]["recorded"],
                        dropped=collected[name]["dropped"])
            for name in self._index_order(collected)]
        parent = self.tracer if self.tracer is not NULL_TRACER else \
            MergedTrace([], MetricsRegistry(), 0, 0)
        return merge_tracers(replica_tracers, parent)

    def result(self, audit: "FleetAuditReport") -> ClusterResult:
        """Assemble the run summary (classic shape, mirror-backed)."""
        replica_cycles = {name: handle.ledger.total
                          for name, handle in self.handles.items()}
        for name, total in sorted(replica_cycles.items()):
            self.tracer.metrics.observe("replica_total_cycles", name,
                                        total)
        self.tracer.metrics.observe("frontend_total_cycles", "frontend",
                                    self.frontend.ledger.total)
        return ClusterResult(
            config=self.config,
            requests_routed=sum(self.frontend.routed.values()),
            routed_by_replica=dict(self.frontend.routed),
            rejected=list(self.rejected),
            makespan_cycles=self.frontend.makespan_cycles(),
            throughput_rps=self.frontend.throughput_rps(),
            handshake_cycles={name: link.handshake_cycles
                              for name, link in self.links.items()},
            replica_cycles=replica_cycles,
            frontend_cycles=self.frontend.ledger.total,
            audit=audit)


def run_warp(config: ClusterConfig | None = None, *,
             workers: int | None = None, tracer=None, net=None,
             scope=None, keep_fleet: bool = False):
    """Boot, attest, serve, and audit one warp fleet run.

    Returns the :class:`~repro.cluster.fleet.ClusterResult`; with
    ``keep_fleet=True`` returns ``(result, fleet)`` with the fleet's
    workers already collected-from and shut down (for merged-trace and
    scope inspection).
    """
    config = config or ClusterConfig()
    fleet = WarpFleet(config, workers=workers, tracer=tracer, net=net,
                      scope=scope)
    try:
        fleet.attest_all()
        fleet.frontend.reset_schedule()
        fleet.drive(config.requests)
        audit = fleet.audit_all()
        result = fleet.result(audit)
        fleet.collect()
    finally:
        fleet.close()
    if keep_fleet:
        return result, fleet
    return result
