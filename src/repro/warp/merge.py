"""Deterministic merge of per-host trace streams and metric registries.

A warp run produces one tracer per replica (clocked on that replica's
own compute ledger, so its event stream is a pure function of the
message sequence the replica handled) plus the parent tracer (front
end, auditor, fabric -- clocked on the fleet's virtual clock).  This
module folds them into a single fleet view with a **total order** that
does not depend on how replicas were sharded across workers:

* events sort by ``(ts, host_rank, seq)`` -- virtual-clock timestamp
  first, then the host's canonical rank (replica index order, parent
  last), then the host-local sequence number; merged events are
  re-sequenced so the output stream is self-consistent;
* metric registries key-sum (counters) and distribution-merge
  (histograms) in canonical host order.

Because every per-host input is deterministic and the sort key is a
pure function of host identity and host-local state, the merged trace
and merged registry are byte-identical across worker counts -- the
warp twin of the single-machine byte-identical-trace contract.
"""

from __future__ import annotations

import dataclasses
import typing

from ..trace.metrics import MetricsRegistry
from ..trace.tracer import TraceEvent


class MergedTrace:
    """Tracer-shaped view over a merged fleet event stream.

    Exposes exactly what :func:`repro.trace.export.chrome_trace` (and
    :func:`~repro.trace.export.render_summary`) read from a live
    tracer: ``events``, ``metrics``, ``recorded``, ``dropped``.
    """

    enabled = True

    def __init__(self, events: list, metrics: MetricsRegistry,
                 recorded: int, dropped: int):
        self.events = events
        self.metrics = metrics
        self.recorded = recorded
        self.dropped = dropped

    def spans(self, category: str | None = None,
              name: str | None = None) -> list:
        """Merged spans, optionally filtered (mirrors ``Tracer.spans``)."""
        from ..trace.tracer import PHASE_SPAN
        return [e for e in self.events if e.phase == PHASE_SPAN and
                (category is None or e.category == category) and
                (name is None or e.name == name)]


def merge_events(streams: "typing.Sequence[typing.Iterable[TraceEvent]]",
                 ) -> list:
    """Totally order per-host event streams into one fleet stream.

    ``streams`` must already be in canonical host order (replica0..N-1,
    parent last); the position in the sequence is the host rank used to
    break timestamp ties.  Each host's own events keep their relative
    order (``seq`` is the final tiebreak), and the merged events are
    re-sequenced 1..n so consumers see one coherent stream.
    """
    keyed = []
    for rank, stream in enumerate(streams):
        for event in stream:
            keyed.append((event.ts, rank, event.seq, event))
    keyed.sort(key=lambda item: item[:3])
    return [dataclasses.replace(event, seq=index + 1)
            for index, (_ts, _rank, _seq, event) in enumerate(keyed)]


def merge_registries(registries: "typing.Sequence[MetricsRegistry]",
                     ) -> MetricsRegistry:
    """Fold metric registries (canonical host order) into a fresh one."""
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry)
    return merged


def merge_tracers(host_tracers: "typing.Sequence",
                  parent_tracer) -> MergedTrace:
    """Merge replica tracers (index order) and the parent tracer.

    Accepts live :class:`~repro.trace.tracer.Tracer` objects or any
    shim exposing ``events`` / ``metrics`` / ``recorded`` / ``dropped``
    (the shape worker collection returns across the process boundary).
    """
    everyone = list(host_tracers) + [parent_tracer]
    return MergedTrace(
        events=merge_events([t.events for t in everyone]),
        metrics=merge_registries([t.metrics for t in everyone]),
        recorded=sum(t.recorded for t in everyone),
        dropped=sum(t.dropped for t in everyone))
