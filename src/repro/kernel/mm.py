"""Kernel memory management: frame accounting, address spaces, page state.

The kernel allocates physical frames from the machine's allocator and owns
the *untrusted* page tables (its own and each process's).  Under Veil, page
state changes (``PVALIDATE``) are delegated to VeilMon; the delegation
callback is injected at boot so this module stays Veil-agnostic.
"""

from __future__ import annotations

import typing

from ..errors import KernelError
from ..hw.pagetable import GuestPageTable
from . import layout

if typing.TYPE_CHECKING:
    from ..hw.platform import SevSnpMachine


class MemoryManager:
    """Guest-kernel physical and virtual memory management."""

    def __init__(self, machine: "SevSnpMachine"):
        self.machine = machine
        #: Called with (ppn, validate) for page-state changes.  Natively it
        #: executes PVALIDATE directly; under Veil it is replaced with a
        #: delegation to VeilMon (section 5.3).
        self.pvalidate_hook = None
        self._owned_frames: set[int] = set()

    # -- frames -----------------------------------------------------------

    def alloc_frame(self, label: str = "kernel") -> int:
        """Allocate one kernel-owned frame."""
        ppn = self.machine.frames.alloc(label)
        self._owned_frames.add(ppn)
        return ppn

    def alloc_frames(self, count: int, label: str = "kernel") -> list[int]:
        """Allocate ``count`` kernel-owned frames.

        veil-warp: delegates to the machine allocator's bulk path (one
        free-list splice instead of ``count`` pops) and folds ownership
        in with one set update.  The returned frame order is identical
        to ``count`` single allocations (a tested invariant).
        """
        ppns = self.machine.frames.alloc_many(count, label)
        self._owned_frames.update(ppns)
        return ppns

    def free_frame(self, ppn: int) -> None:
        """Free a kernel-owned frame (ownership checked)."""
        if ppn not in self._owned_frames:
            raise KernelError(22, f"freeing frame {ppn:#x} not owned by "
                              "the kernel")
        self._owned_frames.discard(ppn)
        self.machine.frames.free(ppn)

    def disown_frame(self, ppn: int) -> None:
        """Drop a frame from kernel accounting without freeing it (e.g.
        after it has been donated to an enclave)."""
        self._owned_frames.discard(ppn)

    def owns(self, ppn: int) -> bool:
        """Whether the kernel accounts for this frame."""
        return ppn in self._owned_frames

    # -- page state (PVALIDATE path) ------------------------------------------

    def validate_page(self, core, ppn: int) -> None:
        """Accept/validate a page (runs PVALIDATE, possibly delegated)."""
        if self.pvalidate_hook is not None:
            self.pvalidate_hook(core, ppn, True)
        else:
            core.pvalidate(ppn=ppn, validate=True)

    def invalidate_page(self, core, ppn: int) -> None:
        """Un-validate a page (PVALIDATE, possibly delegated)."""
        if self.pvalidate_hook is not None:
            self.pvalidate_hook(core, ppn, False)
        else:
            core.pvalidate(ppn=ppn, validate=False)

    # -- address spaces ---------------------------------------------------------

    def switch_address_space(self, core, table: GuestPageTable) -> None:
        """Load ``table`` as the active address space on ``core``.

        Models a non-PCID ``MOV CR3``: the core's software TLB is fully
        flushed.  The syscall path's CR3 toggles do *not* come through
        here -- cached translations are tagged by root (PCID model), so
        the round trip into the kernel space and back stays cached.
        """
        core.regs.cr3 = table.root_ppn
        core.flush_tlb()

    def new_kernel_space(self) -> GuestPageTable:
        """Create the kernel's own address space with the direct map."""
        table = self.machine.create_page_table()
        self.install_kernel_mappings(table)
        return table

    def install_kernel_mappings(self, table: GuestPageTable) -> None:
        """Map the kernel direct map into ``table`` (supervisor-only).

        Every physical page is reachable at ``KERNEL_DIRECT_BASE + paddr``;
        CPL protection hides it from user mode and the RMP still applies,
        so a direct-map pointer into protected memory faults at access time
        rather than at mapping time (exactly the paper's attack surface).
        """
        from ..hw.pagetable import LinearWindow
        table.add_window(LinearWindow(
            base_vpn=layout.vpn(layout.KERNEL_DIRECT_BASE),
            count=self.machine.num_pages, ppn_base=0,
            writable=True, user=False, nx=True))

    def map_region(self, table: GuestPageTable, vaddr: int, ppns: list[int],
                   *, writable: bool, user: bool, nx: bool) -> None:
        """Map contiguous pages at ``vaddr`` with uniform flags."""
        if not layout.page_aligned(vaddr):
            raise KernelError(22, "unaligned mapping")
        for index, ppn in enumerate(ppns):
            table.map(layout.vpn(vaddr) + index, ppn, writable=writable,
                      user=user, nx=nx)

    def unmap_region(self, table: GuestPageTable, vaddr: int,
                     num_pages: int) -> None:
        """Unmap ``num_pages`` starting at ``vaddr``."""
        for index in range(num_pages):
            table.unmap(layout.vpn(vaddr) + index)
