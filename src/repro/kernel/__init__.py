"""Commodity guest-kernel model (the untrusted OS inside the CVM)."""

from .audit import (DEFAULT_AUDIT_RULESET, AuditEntry, AuditSink,
                    InMemoryAuditSink, Kaudit, NullAuditSink)
from .diskfs import DiskSync
from .fs import (FileSystem, Inode, InodeType, O_APPEND, O_CREAT, O_EXCL,
                 O_RDONLY, O_RDWR, O_TRUNC, O_WRONLY, OpenFile, Pipe,
                 SEEK_CUR, SEEK_END, SEEK_SET)
from .kernel import Kernel
from .modules import (LoadedModule, ModuleImage, ModuleLoader, Relocation,
                      build_module)
from .net import AF_INET, AF_UNIX, NetworkStack, SOCK_DGRAM, SOCK_STREAM, \
    Socket
from .process import FileDescriptor, Process, VmRegion
from .scheduler import Scheduler
from .syscalls import (BASE_COSTS, MAP_ANONYMOUS, MAP_PRIVATE, MAP_SHARED,
                       PROT_EXEC, PROT_READ, PROT_WRITE, SyscallTable)
from .vulnerable import AttackerContext

__all__ = [
    "DiskSync",
    "DEFAULT_AUDIT_RULESET", "AuditEntry", "AuditSink", "InMemoryAuditSink",
    "Kaudit", "NullAuditSink", "FileSystem", "Inode", "InodeType",
    "O_APPEND", "O_CREAT", "O_EXCL", "O_RDONLY", "O_RDWR", "O_TRUNC",
    "O_WRONLY", "OpenFile", "Pipe", "SEEK_CUR", "SEEK_END", "SEEK_SET",
    "Kernel", "LoadedModule", "ModuleImage", "ModuleLoader", "Relocation",
    "build_module", "AF_INET", "AF_UNIX", "NetworkStack", "SOCK_DGRAM",
    "SOCK_STREAM", "Socket", "FileDescriptor", "Process", "VmRegion",
    "Scheduler", "BASE_COSTS", "MAP_ANONYMOUS", "MAP_PRIVATE", "MAP_SHARED",
    "PROT_EXEC", "PROT_READ", "PROT_WRITE", "SyscallTable",
    "AttackerContext",
]
