"""The guest kernel object: boot, processes, devices, hooks.

One :class:`Kernel` instance models the commodity Linux guest.  It can boot
in two modes:

* **native** -- the kernel occupies the boot VCPU at VMPL-0 (the standard
  CVM deployment the paper's baseline measures);
* **under Veil** -- the kernel is booted *by VeilMon* into DomUNT (VMPL-3)
  with VCPU-boot and PVALIDATE delegation hooks installed
  (:mod:`repro.core.boot` drives this).

The kernel deliberately exposes :meth:`compromise` -- modeling the paper's
threat step "the attacker ... eventually compromise[s] the CVM's operating
system kernel" -- which yields an attacker context with arbitrary
kernel-privilege primitives (see :mod:`repro.kernel.vulnerable`).
"""

from __future__ import annotations

import contextlib
import itertools
import typing

from ..errors import KernelError, SimulationError
from ..hw.memory import PAGE_SIZE, page_base
from ..hw.pagetable import GuestPageTable, LinearWindow
from ..hw.rmp import VMPL_MON
from . import layout
from .audit import DEFAULT_AUDIT_RULESET, Kaudit
from .fs import FileSystem, InodeType, O_RDWR, OpenFile
from .mm import MemoryManager
from .modules import ModuleLoader
from .net import NetworkStack
from .process import FileDescriptor, Process, VmRegion
from .scheduler import Scheduler
from .syscalls import SyscallTable

if typing.TYPE_CHECKING:
    from ..hw.platform import SevSnpMachine
    from ..hw.vcpu import VirtualCpu

#: Cost of the kernel-side interrupt handler (charged per relayed tick).
INTERRUPT_HANDLER_CYCLES = 2000
#: Console buffer size before an I/O exit flushes it to the hypervisor.
CONSOLE_FLUSH_BYTES = 4096


class Kernel:
    """The commodity guest kernel."""

    def __init__(self, machine: "SevSnpMachine"):
        self.machine = machine
        self.mm = MemoryManager(machine)
        self.fs = FileSystem()
        self.net = NetworkStack()
        self.audit = Kaudit()
        self.scheduler = Scheduler()
        self.syscalls = SyscallTable(self)
        self.module_loader = ModuleLoader(self)
        self.kernel_table: GuestPageTable | None = None
        self.symbol_table: dict[str, int] = {}
        self.device_handlers: dict[str, typing.Callable] = {}
        self.processes: dict[int, Process] = {}
        # Per-kernel pid allocation keeps identical runs on fresh
        # machines identical (the veil-trace determinism contract).
        self._pids = itertools.count(1)
        self.text_ppns: list[int] = []
        self.data_ppns: list[int] = []
        self.ghcb_ppns: dict[int, int] = {}
        self.booted = False
        self.vmpl: int | None = None
        self._console_buffer = bytearray()
        # Hooks VeilS-ENC installs to stay synchronized with process VM ops.
        self.mmap_hooks: list = []
        self.munmap_hooks: list = []
        self.mprotect_hooks: list = []
        #: Hook for VCPU hotplug under Veil: called instead of the native
        #: VMSA-creation path (section 5.3 delegation).
        self.vcpu_boot_hook = None

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------

    def boot(self, core: "VirtualCpu") -> None:
        """Bring the kernel up on ``core`` (already entered on its VMSA)."""
        if self.booted:
            raise SimulationError("kernel already booted")
        self.vmpl = core.vmpl
        self.kernel_table = self.mm.new_kernel_space()
        self._install_kernel_image(core)
        self._setup_filesystem()
        self._setup_ghcbs(core)
        if self.machine.hypervisor is not None:
            self.machine.hypervisor.interrupt_return_hook = \
                self._relayed_interrupt_handler
        self.booted = True

    def _install_kernel_image(self, core: "VirtualCpu") -> None:
        assert self.kernel_table is not None
        self.text_ppns = self.mm.alloc_frames(layout.KERNEL_TEXT_PAGES,
                                              "kernel-text")
        self.data_ppns = self.mm.alloc_frames(layout.KERNEL_DATA_PAGES,
                                              "kernel-data")
        self.mm.map_region(self.kernel_table, layout.KERNEL_TEXT_BASE,
                           self.text_ppns, writable=True, user=False,
                           nx=False)
        self.mm.map_region(self.kernel_table, layout.KERNEL_DATA_BASE,
                           self.data_ppns, writable=True, user=False,
                           nx=True)
        # Write a recognizable instruction pattern into the text pages so
        # integrity checks have real bytes to verify.
        self.mm.switch_address_space(core, self.kernel_table)
        core.regs.cpl = 0
        pattern = bytes(range(256)) * (PAGE_SIZE // 256)
        for index in range(layout.KERNEL_TEXT_PAGES):
            core.write(layout.KERNEL_TEXT_BASE + index * PAGE_SIZE, pattern)
        # Exported symbols land at fixed offsets inside the text region.
        for index in range(16):
            self.symbol_table[f"ksym_{index}"] = (
                layout.KERNEL_TEXT_BASE + 0x2000 + index * 0x100)
        self.machine.idt_handler_vaddr = layout.KERNEL_TEXT_BASE + 0x1000

    def _setup_filesystem(self) -> None:
        self.fs.mkdir("/dev")
        self.fs.mkdir("/tmp")
        self.fs.mkdir("/etc")
        self.fs.mkdir("/var")
        self.fs.mkdir("/var/log")
        console = self.fs._new_inode(InodeType.DEVICE)
        console.device = "console"
        self.fs.root.children["dev"].children["console"] = console

    def _setup_ghcbs(self, core: "VirtualCpu") -> None:
        """Allocate one shared GHCB page per core (GHCB MSR protocol)."""
        for cpu_index in range(len(self.machine.cores)):
            ppn = self.mm.alloc_frame("ghcb")
            self.machine.rmp.share(ppn)
            self.ghcb_ppns[cpu_index] = ppn
        core.wrmsr_ghcb(page_base(self.ghcb_ppns[core.cpu_index]))

    def attach_ghcb(self, core: "VirtualCpu") -> None:
        """Point ``core``'s GHCB MSR at its per-core kernel GHCB."""
        core.wrmsr_ghcb(page_base(self.ghcb_ppns[core.cpu_index]))

    # ------------------------------------------------------------------
    # Kernel execution context
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def kernel_context(self, core: "VirtualCpu"):
        """Run with kernel cr3/CPL-0 on ``core`` (for non-syscall paths)."""
        assert self.kernel_table is not None
        prev_cr3, prev_cpl = core.regs.cr3, core.regs.cpl
        core.regs.cr3 = self.kernel_table.root_ppn
        core.regs.cpl = 0
        try:
            yield core
        finally:
            core.regs.cr3, core.regs.cpl = prev_cr3, prev_cpl

    def charge_compute(self, cycles: int, category: str = "compute") -> None:
        """Charge kernel-side cycles to the ledger."""
        self.machine.ledger.charge(category, cycles)

    def _relayed_interrupt_handler(self, core: "VirtualCpu") -> None:
        """Handle a timer interrupt relayed from enclave context."""
        self.charge_compute(INTERRUPT_HANDLER_CYCLES, "interrupt")

    # ------------------------------------------------------------------
    # Console
    # ------------------------------------------------------------------

    def console_write(self, core: "VirtualCpu", data: bytes) -> int:
        """Buffered console driver; flushes via an I/O exit per 4 KiB."""
        self._console_buffer.extend(data)
        if len(self._console_buffer) >= CONSOLE_FLUSH_BYTES:
            self.console_flush(core)
        return len(data)

    def console_flush(self, core: "VirtualCpu") -> None:
        """Push buffered console output to the host (chunked)."""
        if not self._console_buffer:
            return
        payload = bytes(self._console_buffer)
        self._console_buffer.clear()
        # One GHCB page bounds each I/O request; flush in chunks.
        # veil-warp: hex-encode the payload once and slice the string
        # per chunk -- each hypercall carries byte-identical wire data
        # to encoding chunk-by-chunk.
        chunk_size = 1536
        payload_hex = payload.hex()
        for offset in range(0, len(payload), chunk_size):
            self.hypercall_io(core, {
                "op": "io", "device": "console",
                "data_hex": payload_hex[2 * offset:
                                        2 * (offset + chunk_size)]})

    def hypercall_io(self, core: "VirtualCpu", message: dict) -> dict:
        """Issue a GHCB-mediated I/O hypercall from kernel context."""
        ghcb = core.current_ghcb()
        ghcb.write_message(self.machine.memory, message)
        core.vmgexit()
        return ghcb.read_message(self.machine.memory)

    # ------------------------------------------------------------------
    # Page state changes (PVALIDATE path, possibly delegated)
    # ------------------------------------------------------------------

    def share_page_with_host(self, core: "VirtualCpu", ppn: int) -> None:
        """Convert a private page to shared (e.g. a bounce buffer)."""
        self.mm.invalidate_page(core, ppn)
        self.hypercall_io(core, {"op": "page_state_change",
                                 "action": "share", "ppns": [ppn]})

    def accept_page_from_host(self, core: "VirtualCpu", ppn: int) -> None:
        """Convert a shared page back to private guest memory."""
        self.hypercall_io(core, {"op": "page_state_change",
                                 "action": "private", "ppns": [ppn]})
        self.mm.validate_page(core, ppn)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def create_process(self, name: str, *, stack_pages: int = 4,
                       code_pages: int = 1) -> Process:
        """Create a user process with code, stack, and stdio fds."""
        table = self.machine.create_page_table()
        self.mm.install_kernel_mappings(table)
        # Kernel text must be reachable (supervisor-only) in every address
        # space so syscalls and interrupt delivery can execute.
        table.add_window(LinearWindow(
            base_vpn=layout.vpn(layout.KERNEL_TEXT_BASE),
            count=layout.KERNEL_TEXT_PAGES, ppn_base=self.text_ppns[0],
            writable=False, user=False, nx=False))
        proc = Process(name, table, pid=next(self._pids))
        code_ppns = self.mm.alloc_frames(code_pages, "user-code")
        self.mm.map_region(table, layout.USER_CODE_BASE, code_ppns,
                           writable=False, user=True, nx=False)
        proc.add_region(VmRegion(layout.USER_CODE_BASE, code_pages,
                                 code_ppns, writable=False, executable=True,
                                 kind="code"))
        stack_base = layout.USER_STACK_TOP - stack_pages * PAGE_SIZE
        stack_ppns = self.mm.alloc_frames(stack_pages, "user-stack")
        self.mm.map_region(table, stack_base, stack_ppns, writable=True,
                           user=True, nx=True)
        proc.add_region(VmRegion(stack_base, stack_pages, stack_ppns,
                                 writable=True, executable=False,
                                 kind="stack"))
        console = self.fs.resolve("/dev/console")
        for fd in (0, 1, 2):
            proc.fds[fd] = FileDescriptor(
                "file", OpenFile(inode=console, flags=O_RDWR))
        self.processes[proc.pid] = proc
        self.scheduler.add(proc)
        return proc

    def destroy_process(self, proc: Process) -> None:
        """Tear down a process and free its frames."""
        for region in list(proc.regions.values()):
            for ppn in region.ppns:
                if self.mm.owns(ppn):
                    self.mm.free_frame(ppn)
        proc.regions.clear()
        self.scheduler.remove(proc)
        self.processes.pop(proc.pid, None)

    def syscall(self, core: "VirtualCpu", proc: Process, name: str,
                *args, **kwargs):
        """Public syscall entry point used by workloads and the SDK."""
        return self.syscalls.dispatch(core, proc, name, *args, **kwargs)

    # ------------------------------------------------------------------
    # VM-operation hooks (VeilS-ENC synchronization)
    # ------------------------------------------------------------------

    def notify_mmap(self, proc: Process, region: VmRegion) -> None:
        """Run VM-op hooks after an mmap."""
        for hook in self.mmap_hooks:
            hook(proc, region)

    def notify_munmap(self, proc: Process, region: VmRegion) -> None:
        """Run VM-op hooks after an munmap."""
        for hook in self.munmap_hooks:
            hook(proc, region)

    def notify_mprotect(self, proc: Process, addr: int, length: int,
                        prot: int) -> None:
        """Run VM-op hooks before an mprotect applies."""
        for hook in self.mprotect_hooks:
            hook(proc, addr, length, prot)

    # ------------------------------------------------------------------
    # Devices
    # ------------------------------------------------------------------

    def register_device(self, name: str, handler) -> None:
        """Create /dev/<name> with an ioctl handler (kernel-module style)."""
        device = self.fs._new_inode(InodeType.DEVICE)
        device.device = name
        self.fs.root.children["dev"].children[name] = device
        self.device_handlers[name] = handler

    # ------------------------------------------------------------------
    # VCPU hotplug (section 5.3 delegation target)
    # ------------------------------------------------------------------

    def hotplug_vcpu(self, core: "VirtualCpu", new_vcpu_id: int) -> None:
        """Boot an additional VCPU.

        Natively the kernel (at VMPL-0) creates the VMSA itself; under Veil
        the kernel is architecturally unable to, so ``vcpu_boot_hook``
        performs a domain switch to VeilMon, which creates and starts the
        instance at DomUNT.
        """
        if self.vcpu_boot_hook is not None:
            self.vcpu_boot_hook(core, new_vcpu_id)
            return
        if self.vmpl != VMPL_MON:
            raise KernelError(1, "kernel cannot create VMSAs below VMPL-0")
        hv = self.machine.hypervisor
        assert hv is not None
        vmsa = hv._materialize_vmsa(vcpu_id=new_vcpu_id, vmpl=VMPL_MON)
        ghcb = core.current_ghcb()
        ghcb.write_message(self.machine.memory, {
            "op": "register_vmsa", "vmsa_ppn": vmsa.ppn})
        core.vmgexit()
        ghcb.write_message(self.machine.memory, {
            "op": "start_vcpu", "vcpu_id": new_vcpu_id,
            "vmpl": VMPL_MON})
        core.vmgexit()

    # ------------------------------------------------------------------
    # Compromise (threat-model entry point)
    # ------------------------------------------------------------------

    def compromise(self, core: "VirtualCpu"):
        """Model a full kernel compromise; returns attacker primitives."""
        from .vulnerable import AttackerContext
        return AttackerContext(self, core)

    def enable_default_auditing(self) -> None:
        """Install the paper's audit ruleset."""
        self.audit.set_ruleset(DEFAULT_AUDIT_RULESET)
