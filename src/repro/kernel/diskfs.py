"""Filesystem persistence over the virtio block device.

Serializes the in-memory filesystem to the (untrusted) host block device
and restores it, moving every byte through a *shared bounce buffer* --
the exact path the paper's section 5.3 delegation covers: converting the
bounce page to shared state requires a page-state change, which routes
``PVALIDATE`` through VeilMon on a Veil CVM.

The on-disk format is a length-prefixed JSON snapshot in consecutive
sectors starting at :data:`SUPERBLOCK_LBA`.  The host is untrusted: a
restore validates structure but the data's confidentiality/integrity is
exactly that of any CVM disk (out of Veil's scope; enclaves keep their
secrets in memory or seal them).
"""

from __future__ import annotations

import json
import typing

from ..errors import KernelError
from ..hw.memory import PAGE_SIZE, page_base
from ..knobs import warp_enabled
from .fs import FileSystem, Inode, InodeType

if typing.TYPE_CHECKING:
    from ..hw.vcpu import VirtualCpu
    from .kernel import Kernel

SECTOR = 512
SUPERBLOCK_LBA = 8
MAGIC = "veil-fs-v1"

#: Sectors staged per bounce-page fill on the veil-warp fast path.  The
#: bounce buffer is one page, so a full page's worth of sectors moves
#: per memory call; the device protocol stays one hypercall per sector
#: either way.  ``PAGE_SIZE * copy_per_byte_x1000`` is an exact multiple
#: of 1000 at sector granularity (512 * 250 = 128000), so one page-sized
#: copy charge equals the eight per-sector charges it replaces.
SECTORS_PER_PAGE = PAGE_SIZE // SECTOR


def _serialize_tree(fs: FileSystem) -> dict:
    """Flatten the namespace to path-keyed records (hardlink-safe)."""
    records: dict[str, dict] = {}
    seen_inodes: dict[int, str] = {}

    def walk(node: Inode, path: str) -> None:
        for name, child in sorted(node.children.items()):
            child_path = f"{path}/{name}" if path != "/" else f"/{name}"
            if child.itype == InodeType.DIR:
                records[child_path] = {"type": "dir", "mode": child.mode}
                walk(child, child_path)
            elif child.itype == InodeType.FILE:
                if child.ino in seen_inodes:
                    records[child_path] = {
                        "type": "hardlink",
                        "target": seen_inodes[child.ino]}
                else:
                    records[child_path] = {
                        "type": "file", "mode": child.mode,
                        "data_hex": bytes(child.data).hex()}
                    seen_inodes[child.ino] = child_path
            elif child.itype == InodeType.SYMLINK:
                records[child_path] = {"type": "symlink",
                                       "target": child.target}
            elif child.itype == InodeType.DEVICE:
                records[child_path] = {"type": "device",
                                       "device": child.device}
            # FIFOs hold transient state; they are not persisted.

    walk(fs.root, "/")
    return {"magic": MAGIC, "records": records}


class DiskSync:
    """Sync/restore engine bound to one kernel."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._bounce_ppn: int | None = None

    def _bounce(self, core: "VirtualCpu") -> int:
        """Lazily set up the shared bounce page (PVALIDATE-delegated
        page-state change under Veil)."""
        if self._bounce_ppn is None:
            ppn = self.kernel.mm.alloc_frame("disk-bounce")
            self.kernel.share_page_with_host(core, ppn)
            self._bounce_ppn = ppn
        return self._bounce_ppn

    def _write_sectors(self, core: "VirtualCpu", blob: bytes) -> int:
        """Stream the snapshot through the bounce buffer to the disk."""
        bounce = self._bounce(core)
        lba = SUPERBLOCK_LBA
        if warp_enabled():
            # veil-warp: stage a full bounce page of sectors per memory
            # call; the per-sector device hypercalls (and their wire
            # bytes) are unchanged, and the page-sized copy charge
            # equals the per-sector charges it replaces exactly.
            memory = self.kernel.machine.memory
            base = page_base(bounce)
            for start in range(0, len(blob), SECTOR * SECTORS_PER_PAGE):
                batch = blob[start:start + SECTOR * SECTORS_PER_PAGE]
                padded = len(batch) + (-len(batch)) % SECTOR
                batch = batch.ljust(padded, b"\x00")
                memory.write(base, batch)
                staged_hex = memory.read(base, len(batch)).hex()
                for sec in range(0, len(batch), SECTOR):
                    self.kernel.hypercall_io(core, {
                        "op": "io", "device": "block", "action": "write",
                        "lba": lba,
                        "data_hex": staged_hex[2 * sec:
                                               2 * (sec + SECTOR)]})
                    lba += 1
            return lba - SUPERBLOCK_LBA
        for offset in range(0, len(blob), SECTOR):
            sector = blob[offset:offset + SECTOR].ljust(SECTOR, b"\x00")
            # Stage in the shared page (the device "DMAs" from it)...
            self.kernel.machine.memory.write(page_base(bounce), sector)
            self.kernel.hypercall_io(core, {
                "op": "io", "device": "block", "action": "write",
                "lba": lba, "data_hex": self.kernel.machine.memory.read(
                    page_base(bounce), SECTOR).hex()})
            lba += 1
        return lba - SUPERBLOCK_LBA

    def _read_sectors(self, core: "VirtualCpu", count: int) -> bytes:
        bounce = self._bounce(core)
        blob = bytearray()
        if warp_enabled():
            # veil-warp: same per-sector device reads, but sectors are
            # gathered and moved through the bounce page a full page at
            # a time (charge-equal to the per-sector staging).
            memory = self.kernel.machine.memory
            base = page_base(bounce)
            for start in range(0, count, SECTORS_PER_PAGE):
                sectors = []
                for index in range(start,
                                   min(start + SECTORS_PER_PAGE, count)):
                    reply = self.kernel.hypercall_io(core, {
                        "op": "io", "device": "block", "action": "read",
                        "lba": SUPERBLOCK_LBA + index})
                    sectors.append(bytes.fromhex(reply["data_hex"]))
                batch = b"".join(sectors)
                memory.write(base, batch)
                blob.extend(memory.read(base, len(batch)))
            return bytes(blob)
        for index in range(count):
            reply = self.kernel.hypercall_io(core, {
                "op": "io", "device": "block", "action": "read",
                "lba": SUPERBLOCK_LBA + index})
            sector = bytes.fromhex(reply["data_hex"])
            self.kernel.machine.memory.write(page_base(bounce), sector)
            blob.extend(self.kernel.machine.memory.read(
                page_base(bounce), SECTOR))
        return bytes(blob)

    # ------------------------------------------------------------------

    def sync(self, core: "VirtualCpu") -> int:
        """Persist the filesystem; returns sectors written."""
        snapshot = json.dumps(_serialize_tree(self.kernel.fs),
                              sort_keys=True).encode("utf-8")
        framed = len(snapshot).to_bytes(8, "little") + snapshot
        with self.kernel.kernel_context(core):
            return self._write_sectors(core, framed)

    def restore(self, core: "VirtualCpu") -> int:
        """Rebuild the filesystem from disk; returns records restored."""
        with self.kernel.kernel_context(core):
            header = self._read_sectors(core, 1)
            length = int.from_bytes(header[:8], "little")
            if length == 0 or length > 64 * 1024 * 1024:
                raise KernelError(5, "no valid filesystem snapshot")
            total_sectors = (8 + length + SECTOR - 1) // SECTOR
            blob = self._read_sectors(core, total_sectors)
        snapshot = json.loads(blob[8:8 + length].decode("utf-8"))
        if snapshot.get("magic") != MAGIC:
            raise KernelError(5, "bad filesystem snapshot magic")
        return self._rebuild(snapshot["records"])

    def _rebuild(self, records: dict) -> int:
        fs = FileSystem()
        self.kernel.fs = fs
        restored = 0
        # Dirs first (sorted paths put parents before children).
        for path, record in sorted(records.items()):
            kind = record["type"]
            if kind == "dir":
                fs.mkdir(path, record.get("mode", 0o755))
            elif kind == "file":
                inode = fs.create(path, mode=record.get("mode", 0o644))
                inode.data = bytearray(bytes.fromhex(record["data_hex"]))
            elif kind == "symlink":
                fs.symlink(record["target"], path)
            elif kind == "device":
                device = fs._new_inode(InodeType.DEVICE)
                device.device = record["device"]
                parent, name = fs.resolve_parent(path)
                parent.children[name] = device
            restored += 1
        # Hardlinks once their targets exist.
        for path, record in sorted(records.items()):
            if record["type"] == "hardlink":
                fs.link(record["target"], path)
                restored += 1
        return restored
