"""Kaudit: the kernel's audit framework (Linux kaudit model).

Log entries are produced at ``audit_log_end`` time for syscalls matched by
the installed ruleset (the paper uses the ruleset from prior forensics
work; see :data:`DEFAULT_AUDIT_RULESET`) and for explicit kernel events
(module load/unload, etc.).

The *sink* is pluggable, mirroring the paper's evaluation setup:

* :class:`InMemoryAuditSink` -- the paper's modified Kaudit baseline that
  keeps logs in kernel memory (auditd's userspace writer removed);
* VeilS-LOG installs its own sink that forwards each entry through an IDCB
  plus a domain switch into protected storage (section 6.3).

An attacker who compromises the kernel can trivially rewrite an in-memory
sink's buffer; that is the attack VeilS-LOG defeats.
"""

from __future__ import annotations

import json
import typing
from dataclasses import dataclass

if typing.TYPE_CHECKING:
    from ..hw.vcpu import VirtualCpu

# Ruleset from the paper's footnote (section 9.2, CS3).
DEFAULT_AUDIT_RULESET = frozenset({
    "read", "readv", "write", "writev", "sendto", "recvfrom", "sendmsg",
    "recvmsg", "mmap", "mprotect", "link", "symlink", "clone", "fork",
    "vfork", "execve", "open", "close", "creat", "openat", "mknodat",
    "mknod", "dup", "dup2", "dup3", "bind", "accept", "accept4", "connect",
    "rename", "setuid", "setreuid", "setresuid", "chmod", "fchmod", "pipe",
    "pipe2", "truncate", "ftruncate", "sendfile", "unlink", "unlinkat",
    "socketpair", "splice",
})


@dataclass(frozen=True)
class AuditEntry:
    """One serialized audit record."""

    seq: int
    cycles: int
    pid: int
    kind: str              # "syscall" or an event name
    detail: dict

    def serialize(self) -> bytes:
        """JSON-encode the record for storage."""
        return json.dumps({
            "seq": self.seq, "cycles": self.cycles, "pid": self.pid,
            "kind": self.kind, "detail": self.detail,
        }, sort_keys=True).encode("utf-8")


class AuditSink:
    """Interface for log storage backends."""

    name = "abstract"

    def append(self, core: "VirtualCpu", entry: AuditEntry) -> None:
        """Store one record (backend-specific)."""
        raise NotImplementedError

    def entry_count(self) -> int:
        """Records stored so far."""
        raise NotImplementedError


class NullAuditSink(AuditSink):
    """Auditing disabled (the 'native' baseline in Fig. 6)."""

    name = "null"

    def append(self, core, entry: AuditEntry) -> None:
        pass

    def entry_count(self) -> int:
        """Always zero (auditing disabled)."""
        return 0


class InMemoryAuditSink(AuditSink):
    """Modified Kaudit: entries appended to a kernel memory buffer.

    Charges the copy of the serialized record plus a small bookkeeping
    cost.  The buffer is plain kernel memory: a compromised kernel can
    rewrite it (see :mod:`repro.attacks`).
    """

    name = "kaudit"

    #: Kernel-side record collection/formatting cost (context gathering,
    #: field serialization, allocation).  Kaudit record production is
    #: known to be expensive; this constant is calibrated so the
    #: in-memory baseline lands in the paper's 0.3-8.7% overhead band.
    PER_ENTRY_CYCLES = 4400

    def __init__(self, core_for_cost: "VirtualCpu | None" = None):
        self.records: list[bytes] = []
        self._core = core_for_cost

    def append(self, core, entry: AuditEntry) -> None:
        blob = entry.serialize()
        machine = core.machine
        machine.ledger.charge("audit",
                              machine.cost.copy_cost(len(blob)) +
                              self.PER_ENTRY_CYCLES)
        self.records.append(blob)

    def entry_count(self) -> int:
        """Records held in the kernel buffer."""
        return len(self.records)

    def tamper(self, index: int, blob: bytes) -> None:
        """Attacker primitive: rewrite a stored record (always succeeds --
        this sink has no protection, which is the point of the baseline)."""
        self.records[index] = blob


class Kaudit:
    """The audit framework wired into syscall dispatch."""

    def __init__(self, ruleset: frozenset = frozenset()):
        self.ruleset = ruleset
        self.sink: AuditSink = NullAuditSink()
        self._seq = 0
        self.dropped = 0

    def set_ruleset(self, ruleset) -> None:
        """Install the audited-syscall set."""
        self.ruleset = frozenset(ruleset)

    def set_sink(self, sink: AuditSink) -> None:
        """Install the storage backend."""
        self.sink = sink

    @property
    def enabled(self) -> bool:
        return bool(self.ruleset) and not isinstance(self.sink,
                                                     NullAuditSink)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def log_syscall(self, core: "VirtualCpu", pid: int, name: str,
                    args_summary: dict, result) -> None:
        """audit_log_end hook: called after a matched syscall returns."""
        if name not in self.ruleset:
            return
        entry = AuditEntry(seq=self._next_seq(),
                           cycles=core.machine.ledger.total, pid=pid,
                           kind="syscall",
                           detail={"syscall": name, "args": args_summary,
                                   "ret": repr(result)})
        core.machine.tracer.instant(
            "audit", f"append:{name}", vcpu=core.cpu_index, pid=pid,
            args={"seq": entry.seq, "sink": self.sink.name})
        self.sink.append(core, entry)

    def log_event(self, core: "VirtualCpu", kind: str, detail: dict) -> None:
        """Kernel-event records (module load, segfault, ...)."""
        if isinstance(self.sink, NullAuditSink):
            return
        entry = AuditEntry(seq=self._next_seq(),
                           cycles=core.machine.ledger.total, pid=0,
                           kind=kind, detail=detail)
        core.machine.tracer.instant(
            "audit", f"append:{kind}", vcpu=core.cpu_index,
            args={"seq": entry.seq, "sink": self.sink.name})
        self.sink.append(core, entry)
