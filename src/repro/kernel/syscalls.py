"""Syscall dispatch for the guest kernel.

Conventions
-----------

* Data-carrying arguments (read/write/send/recv buffers) are **guest
  virtual addresses** into the calling process's address space; the kernel
  copies through simulated memory, so RMP/page-table protection applies and
  copy cycles are charged.
* Path and small scalar arguments are passed as Python values for
  ergonomics, with the ``strncpy_from_user`` copy cost charged explicitly.
* Every syscall charges a calibrated base "kernel work" cost (see
  :data:`BASE_COSTS`); calibration notes live in DESIGN.md section 4.

Dispatch also drives the kaudit hook (``audit_log_end``), which is where
VeilS-LOG attaches.
"""

from __future__ import annotations

import typing
from collections import Counter

from ..errors import KernelError
from ..hw.memory import PAGE_SIZE
from ..hw.rng import DeterministicRandom, GETRANDOM_SEED
from . import fs as fsmod
from . import layout, net
from .fs import (O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY, InodeType)
from .process import FileDescriptor, Process, VmRegion

if typing.TYPE_CHECKING:
    from ..hw.vcpu import VirtualCpu
    from .kernel import Kernel

# Protection and mapping flags (Linux values).
PROT_READ, PROT_WRITE, PROT_EXEC = 1, 2, 4
MAP_SHARED, MAP_PRIVATE, MAP_ANONYMOUS = 1, 2, 0x20

ENOSYS, EINVAL, EBADF, ENOTTY, ECHILD = 38, 22, 9, 25, 10

#: Calibrated native per-syscall kernel-work costs (cycles).  Chosen so
#: the Fig. 4 enclave-redirection ratios land in the paper's 3.3x-7.1x
#: band with the measured 7135-cycle domain switch.
BASE_COSTS = {
    "open": 2860, "openat": 2900, "creat": 2800, "close": 700,
    "read": 3000, "write": 3000, "readv": 3200, "writev": 3200,
    "pread": 3050, "pwrite": 3050, "lseek": 400, "stat": 1800,
    "fstat": 600, "mmap": 3430, "munmap": 700, "mprotect": 1500,
    "brk": 800, "socket": 4200, "bind": 1200, "listen": 900,
    "accept": 3000, "accept4": 3050, "connect": 3500, "sendto": 2500,
    "recvfrom": 2500, "sendmsg": 2600, "recvmsg": 2600,
    "socketpair": 3800, "pipe": 2200, "pipe2": 2250, "dup": 500,
    "dup2": 520, "dup3": 540, "link": 2000, "unlink": 1900,
    "unlinkat": 1950, "symlink": 2000, "readlink": 1500, "rename": 2200,
    "mkdir": 2100, "rmdir": 1900, "mknod": 2000, "mknodat": 2050,
    "chmod": 1200, "fchmod": 800, "truncate": 1500, "ftruncate": 1200,
    "sendfile": 2800, "splice": 2600, "getpid": 200, "getuid": 200,
    "geteuid": 200, "setuid": 600, "setreuid": 650, "setresuid": 700,
    "fork": 30000, "vfork": 25000, "clone": 28000, "execve": 50000,
    "exit": 1000, "wait4": 800, "uname": 300, "getrandom": 1200,
    "clock_gettime": 250, "nanosleep": 500, "ioctl": 900, "fcntl": 450,
    "getdents": 1400, "access": 1500, "faccessat": 1550, "chdir": 900,
    "getcwd": 400, "umask": 250, "getppid": 200, "getpgid": 250,
    "sched_yield": 600, "sync": 4000, "fsync": 2500, "fdatasync": 2200,
    "madvise": 900, "msync": 2000, "linkat": 2050, "symlinkat": 2050,
    "renameat": 2250, "fchmodat": 1250, "gettid": 200,
}

#: Extra "driver work" for console-device writes; calibrated so a native
#: printf-style call costs ~6.2k cycles (paper Fig. 4's lowest ratio).
CONSOLE_DRIVER_CYCLES = 3200


class SyscallTable:
    """Syscall entry point bound to one kernel instance."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.call_count = 0
        self.per_syscall_counts: Counter[str] = Counter()
        # Boot-seeded entropy pool backing sys_getrandom: part of the
        # machine's measured state, so replays read identical bytes.
        self._entropy_pool = DeterministicRandom(GETRANDOM_SEED)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def supported(self) -> list[str]:
        """Names of every implemented syscall."""
        return sorted(name[4:] for name in dir(self)
                      if name.startswith("sys_"))

    def dispatch(self, core: "VirtualCpu", proc: Process, name: str,
                 *args, **kwargs):
        """Execute syscall ``name`` for ``proc`` on ``core``."""
        machine = self.kernel.machine
        machine.check_running()
        handler = getattr(self, f"sys_{name}", None)
        if handler is None:
            raise KernelError(ENOSYS, f"unimplemented syscall {name}")
        self.call_count += 1
        self.per_syscall_counts[name] += 1
        tracer = machine.tracer
        tracer.metrics.count("syscall", name)
        vmpl = core.instance.vmpl if core.instance is not None else -1
        with tracer.span("syscall", name, vcpu=core.cpu_index,
                         vmpl=vmpl, pid=proc.pid):
            machine.ledger.charge("syscall", machine.cost.syscall_entry)
            machine.ledger.charge("syscall", BASE_COSTS.get(name, 1000))
            # Execute-ahead auditing (section 6.3): the record is produced
            # and protected *before* the audited event runs, so it survives
            # even if the event is the compromise itself.
            self.kernel.audit.log_syscall(core, proc.pid, name,
                                          self._summarize(args), "ahead")
            prev_cpl = core.regs.cpl
            prev_cr3 = core.regs.cr3
            core.regs.cr3 = proc.page_table.root_ppn
            core.regs.cpl = 0
            try:
                result = handler(core, proc, *args, **kwargs)
            finally:
                core.regs.cpl = prev_cpl
                core.regs.cr3 = prev_cr3
        return result

    @staticmethod
    def _summarize(args) -> dict:
        summary = {}
        for index, value in enumerate(args[:4]):
            if isinstance(value, (int, str)):
                summary[f"a{index}"] = value
        return summary

    # ------------------------------------------------------------------
    # User-memory helpers
    # ------------------------------------------------------------------

    def _charge_path_copy(self, path: str) -> None:
        cost = self.kernel.machine.cost.copy_cost(len(path) + 1)
        self.kernel.machine.ledger.charge("copy", cost)

    # ------------------------------------------------------------------
    # Files
    # ------------------------------------------------------------------

    def sys_open(self, core, proc, path: str, flags: int = O_RDONLY,
                 mode: int = 0o644) -> int:
        """Open (optionally creating) a file; returns a new fd."""
        self._charge_path_copy(path)
        handle = self.kernel.fs.open(path, flags, mode)
        if handle.inode.itype == InodeType.DEVICE:
            return proc.install_fd(FileDescriptor("file", handle))
        return proc.install_fd(FileDescriptor("file", handle))

    def sys_openat(self, core, proc, dirfd: int, path: str,
                   flags: int = O_RDONLY, mode: int = 0o644) -> int:
        """openat: the rooted model treats dirfd as AT_FDCWD."""
        # The model is rooted: AT_FDCWD and absolute paths behave alike.
        return self.sys_open(core, proc, path, flags, mode)

    def sys_creat(self, core, proc, path: str, mode: int = 0o644) -> int:
        """creat = open(path, O_CREAT|O_WRONLY|O_TRUNC)."""
        return self.sys_open(core, proc, path,
                             O_CREAT | O_WRONLY | O_TRUNC, mode)

    def sys_close(self, core, proc, fd: int) -> int:
        """Close an fd (unbinding listener sockets)."""
        entry = proc.remove_fd(fd)
        if entry.kind == "socket":
            sock = typing.cast(net.Socket, entry.obj)
            self.kernel.net.unbind(sock)
            sock.close()
        return 0

    def _device_write(self, core, inode, data: bytes) -> int:
        if inode.device == "console":
            self.kernel.machine.ledger.charge("syscall",
                                              CONSOLE_DRIVER_CYCLES)
            return self.kernel.console_write(core, data)
        raise KernelError(ENOTTY, f"write to device {inode.device!r}")

    def sys_read(self, core, proc, fd: int, buf: int, count: int) -> int:
        """Read into the user buffer at ``buf``; returns bytes read."""
        entry = proc.fd(fd)
        if entry.kind == "socket":
            data = entry.socket.recv(count)
        elif entry.kind == "pipe_read":
            data = entry.pipe.read(count)
        elif entry.kind == "pipe_write":
            raise KernelError(EBADF, "read on write end")
        else:
            handle = entry.file
            if handle.inode.itype == InodeType.DEVICE:
                data = b""
            else:
                data = self.kernel.fs.read(handle, count)
        if data:
            core.write(buf, data)
        return len(data)

    def sys_write(self, core, proc, fd: int, buf: int, count: int) -> int:
        """Write ``count`` bytes from the user buffer at ``buf``."""
        entry = proc.fd(fd)
        data = core.read(buf, count) if count else b""
        if entry.kind == "socket":
            return entry.socket.send(data)
        if entry.kind == "pipe_write":
            return entry.pipe.write(data)
        if entry.kind == "pipe_read":
            raise KernelError(EBADF, "write on read end")
        handle = entry.file
        if handle.inode.itype == InodeType.DEVICE:
            return self._device_write(core, handle.inode, data)
        return self.kernel.fs.write(handle, data)

    def sys_readv(self, core, proc, fd: int, iov: list) -> int:
        """Scatter read across an iovec of (vaddr, len) pairs."""
        total = 0
        for vaddr, length in iov:
            got = self.sys_read(core, proc, fd, vaddr, length)
            total += got
            if got < length:
                break
        return total

    def sys_writev(self, core, proc, fd: int, iov: list) -> int:
        """Gather write across an iovec of (vaddr, len) pairs."""
        total = 0
        for vaddr, length in iov:
            total += self.sys_write(core, proc, fd, vaddr, length)
        return total

    def sys_pread(self, core, proc, fd: int, buf: int, count: int,
                  offset: int) -> int:
        """Positional read; the file offset is unchanged."""
        handle = proc.fd(fd).file
        saved = handle.offset
        handle.offset = offset
        try:
            data = self.kernel.fs.read(handle, count)
        finally:
            handle.offset = saved
        if data:
            core.write(buf, data)
        return len(data)

    def sys_pwrite(self, core, proc, fd: int, buf: int, count: int,
                   offset: int) -> int:
        """Positional write; the file offset is unchanged."""
        handle = proc.fd(fd).file
        saved = handle.offset
        handle.offset = offset
        try:
            data = core.read(buf, count)
            return self.kernel.fs.write(handle, data)
        finally:
            handle.offset = saved + 0  # pwrite does not move the offset

    def sys_lseek(self, core, proc, fd: int, offset: int,
                  whence: int) -> int:
        """Reposition the file offset (SEEK_SET/CUR/END)."""
        return self.kernel.fs.lseek(proc.fd(fd).file, offset, whence)

    def sys_stat(self, core, proc, path: str) -> dict:
        """Path metadata: ino, type, size, mode, nlink."""
        self._charge_path_copy(path)
        return self.kernel.fs.stat(path)

    def sys_fstat(self, core, proc, fd: int) -> dict:
        """fd metadata (socket/pipe fds report their kind)."""
        entry = proc.fd(fd)
        if entry.kind != "file":
            return {"type": entry.kind, "size": 0}
        inode = entry.file.inode
        return {"ino": inode.ino, "type": inode.itype.value,
                "size": inode.size, "mode": inode.mode,
                "nlink": inode.nlink}

    def sys_getdents(self, core, proc, fd: int) -> list:
        """Sorted names of a directory fd's entries."""
        handle = proc.fd(fd).file
        if handle.inode.itype != InodeType.DIR:
            raise KernelError(fsmod.ENOTDIR, "getdents on non-directory")
        return sorted(handle.inode.children)

    # ------------------------------------------------------------------
    # Namespace
    # ------------------------------------------------------------------

    def sys_link(self, core, proc, oldpath: str, newpath: str) -> int:
        """Create a hard link (shares the inode)."""
        self._charge_path_copy(oldpath + newpath)
        self.kernel.fs.link(oldpath, newpath)
        return 0

    def sys_unlink(self, core, proc, path: str) -> int:
        """Remove a name; drops the inode's link count."""
        self._charge_path_copy(path)
        self.kernel.fs.unlink(path)
        return 0

    def sys_unlinkat(self, core, proc, dirfd: int, path: str,
                     flags: int = 0) -> int:
        """unlinkat: rooted model, dirfd ignored."""
        return self.sys_unlink(core, proc, path)

    def sys_symlink(self, core, proc, target: str, linkpath: str) -> int:
        """Create a symbolic link to ``target``."""
        self._charge_path_copy(target + linkpath)
        self.kernel.fs.symlink(target, linkpath)
        return 0

    def sys_readlink(self, core, proc, path: str, buf: int,
                     bufsize: int) -> int:
        """Copy a symlink's target into the user buffer."""
        self._charge_path_copy(path)
        inode = self.kernel.fs.resolve(path, follow=False)
        if inode.itype != InodeType.SYMLINK:
            raise KernelError(EINVAL, "not a symlink")
        data = inode.target.encode()[:bufsize]
        core.write(buf, data)
        return len(data)

    def sys_rename(self, core, proc, oldpath: str, newpath: str) -> int:
        """Move a name (replacing any existing target)."""
        self._charge_path_copy(oldpath + newpath)
        self.kernel.fs.rename(oldpath, newpath)
        return 0

    def sys_mkdir(self, core, proc, path: str, mode: int = 0o755) -> int:
        """Create a directory."""
        self._charge_path_copy(path)
        self.kernel.fs.mkdir(path, mode)
        return 0

    def sys_rmdir(self, core, proc, path: str) -> int:
        """Remove an empty directory."""
        self._charge_path_copy(path)
        self.kernel.fs.rmdir(path)
        return 0

    def sys_mknod(self, core, proc, path: str, mode: int = 0) -> int:
        """Create a FIFO node (the special-file subset supported)."""
        self._charge_path_copy(path)
        self.kernel.fs.mknod_fifo(path)
        return 0

    def sys_mknodat(self, core, proc, dirfd: int, path: str,
                    mode: int = 0) -> int:
        """mknodat: rooted model, dirfd ignored."""
        return self.sys_mknod(core, proc, path, mode)

    def sys_chmod(self, core, proc, path: str, mode: int) -> int:
        """Set a path's permission bits."""
        self._charge_path_copy(path)
        self.kernel.fs.resolve(path).mode = mode & 0o7777
        return 0

    def sys_fchmod(self, core, proc, fd: int, mode: int) -> int:
        """Set an open file's permission bits."""
        proc.fd(fd).file.inode.mode = mode & 0o7777
        return 0

    def sys_truncate(self, core, proc, path: str, length: int) -> int:
        """Resize a file by path (zero-fills growth)."""
        self._charge_path_copy(path)
        self.kernel.fs.truncate(path, length)
        return 0

    def sys_ftruncate(self, core, proc, fd: int, length: int) -> int:
        """Resize a file by fd."""
        self.kernel.fs.truncate(proc.fd(fd).file, length)
        return 0

    def sys_sendfile(self, core, proc, out_fd: int, in_fd: int,
                     count: int) -> int:
        """Copy ``count`` bytes from in_fd to out_fd in-kernel."""
        in_handle = proc.fd(in_fd).file
        data = self.kernel.fs.read(in_handle, count)
        self.kernel.machine.ledger.charge(
            "copy", self.kernel.machine.cost.copy_cost(len(data)))
        out = proc.fd(out_fd)
        if out.kind == "socket":
            return out.socket.send(data)
        return self.kernel.fs.write(out.file, data)

    def sys_splice(self, core, proc, in_fd: int, out_fd: int,
                   count: int) -> int:
        """Modeled as sendfile (in-kernel copy)."""
        return self.sys_sendfile(core, proc, out_fd, in_fd, count)

    # ------------------------------------------------------------------
    # fd manipulation
    # ------------------------------------------------------------------

    def sys_dup(self, core, proc, fd: int) -> int:
        """Duplicate an fd (shares the open file description)."""
        entry = proc.fd(fd)
        return proc.install_fd(FileDescriptor(entry.kind, entry.obj))

    def sys_dup2(self, core, proc, oldfd: int, newfd: int) -> int:
        """Duplicate onto a specific fd, closing any occupant."""
        entry = proc.fd(oldfd)
        if newfd in proc.fds:
            proc.remove_fd(newfd)
        proc.install_fd(FileDescriptor(entry.kind, entry.obj), at=newfd)
        return newfd

    def sys_dup3(self, core, proc, oldfd: int, newfd: int,
                 flags: int = 0) -> int:
        """dup2 that rejects equal fds."""
        if oldfd == newfd:
            raise KernelError(EINVAL, "dup3 with equal fds")
        return self.sys_dup2(core, proc, oldfd, newfd)

    def sys_fcntl(self, core, proc, fd: int, cmd: int, arg: int = 0) -> int:
        """F_DUPFD/F_GETFL/F_SETFL subset."""
        F_DUPFD, F_GETFL, F_SETFL = 0, 3, 4
        entry = proc.fd(fd)
        if cmd == F_DUPFD:
            return proc.install_fd(FileDescriptor(entry.kind, entry.obj))
        if cmd == F_GETFL:
            return entry.file.flags if entry.kind == "file" else 0
        if cmd == F_SETFL:
            return 0
        raise KernelError(EINVAL, f"fcntl cmd {cmd}")

    def sys_pipe(self, core, proc) -> tuple:
        """Create a pipe; returns (read fd, write fd)."""
        pipe = fsmod.Pipe()
        rfd = proc.install_fd(FileDescriptor("pipe_read", pipe))
        wfd = proc.install_fd(FileDescriptor("pipe_write", pipe))
        return rfd, wfd

    def sys_pipe2(self, core, proc, flags: int = 0) -> tuple:
        """pipe with flags (flags subset ignored)."""
        return self.sys_pipe(core, proc)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------

    def sys_mmap(self, core, proc, addr: int, length: int, prot: int,
                 flags: int, fd: int = -1, offset: int = 0) -> int:
        """Map anonymous or file-backed memory; returns the vaddr."""
        if length <= 0:
            raise KernelError(EINVAL, "mmap length")
        num_pages = (length + PAGE_SIZE - 1) // PAGE_SIZE
        vaddr = addr if addr else proc.reserve_mmap_range(num_pages)
        ppns = self.kernel.mm.alloc_frames(num_pages, "mmap")
        writable = bool(prot & PROT_WRITE)
        executable = bool(prot & PROT_EXEC)
        for ppn in ppns:
            self.kernel.machine.memory.zero_page(ppn)
        self.kernel.mm.map_region(proc.page_table, vaddr, ppns,
                                  writable=writable, user=True,
                                  nx=not executable)
        region = VmRegion(vaddr=vaddr, num_pages=num_pages, ppns=ppns,
                          writable=writable, executable=executable,
                          kind="anon" if fd < 0 else "file")
        proc.add_region(region)
        if fd >= 0 and not flags & MAP_ANONYMOUS:
            handle = proc.fd(fd).file
            saved = handle.offset
            handle.offset = offset
            data = self.kernel.fs.read(handle, length)
            handle.offset = saved
            if data:
                core.write(vaddr, data)
        self.kernel.notify_mmap(proc, region)
        return vaddr

    def sys_munmap(self, core, proc, addr: int, length: int) -> int:
        """Unmap a region created by mmap and free its frames."""
        region = proc.regions.pop(addr, None)
        if region is None:
            raise KernelError(EINVAL, f"munmap: no region at {addr:#x}")
        self.kernel.mm.unmap_region(proc.page_table, region.vaddr,
                                    region.num_pages)
        for ppn in region.ppns:
            self.kernel.mm.free_frame(ppn)
        self.kernel.notify_munmap(proc, region)
        return 0

    def sys_mprotect(self, core, proc, addr: int, length: int,
                     prot: int) -> int:
        """Change a region's page protections (hooks VeilS-ENC sync)."""
        region = proc.region_containing(addr)
        if region is None:
            raise KernelError(EINVAL, f"mprotect: no region at {addr:#x}")
        # VeilS-ENC intercepts permission changes touching enclave space.
        self.kernel.notify_mprotect(proc, addr, length, prot)
        num_pages = (length + PAGE_SIZE - 1) // PAGE_SIZE
        for index in range(num_pages):
            proc.page_table.protect(layout.vpn(addr) + index,
                                    writable=bool(prot & PROT_WRITE),
                                    nx=not prot & PROT_EXEC)
        region.writable = bool(prot & PROT_WRITE)
        region.executable = bool(prot & PROT_EXEC)
        return 0

    def sys_brk(self, core, proc, new_brk: int) -> int:
        """Grow the heap break (never shrinks in this model)."""
        if new_brk <= proc.brk:
            return proc.brk
        start = layout.align_up(proc.brk)
        num_pages = (layout.align_up(new_brk) - start) // PAGE_SIZE
        if num_pages > 0:
            ppns = self.kernel.mm.alloc_frames(num_pages, "brk")
            self.kernel.mm.map_region(proc.page_table, start, ppns,
                                      writable=True, user=True, nx=True)
            proc.add_region(VmRegion(vaddr=start, num_pages=num_pages,
                                     ppns=ppns, writable=True,
                                     executable=False, kind="heap"))
        proc.set_brk(new_brk)
        return new_brk

    # ------------------------------------------------------------------
    # Network
    # ------------------------------------------------------------------

    def sys_socket(self, core, proc, family: int, stype: int,
                   proto: int = 0) -> int:
        """Create a socket; returns its fd."""
        sock = self.kernel.net.socket(family, stype)
        return proc.install_fd(FileDescriptor("socket", sock))

    def sys_bind(self, core, proc, fd: int, addr: str, port: int) -> int:
        """Bind a socket to (addr, port)."""
        self.kernel.net.bind(proc.fd(fd).socket, addr, port)
        return 0

    def sys_listen(self, core, proc, fd: int, backlog: int = 16) -> int:
        """Mark a bound socket as accepting connections."""
        self.kernel.net.listen(proc.fd(fd).socket, backlog)
        return 0

    def sys_accept(self, core, proc, fd: int) -> int:
        """Pop a pending connection; returns the new fd."""
        conn = self.kernel.net.accept(proc.fd(fd).socket)
        return proc.install_fd(FileDescriptor("socket", conn))

    def sys_accept4(self, core, proc, fd: int, flags: int = 0) -> int:
        """accept with flags (subset ignored)."""
        return self.sys_accept(core, proc, fd)

    def sys_connect(self, core, proc, fd: int, addr: str,
                    port: int) -> int:
        """Connect to a listening (addr, port)."""
        self.kernel.net.connect(proc.fd(fd).socket, addr, port)
        return 0

    def sys_sendto(self, core, proc, fd: int, buf: int, count: int,
                   dest=None) -> int:
        """Send bytes from the user buffer over a socket."""
        data = core.read(buf, count)
        return proc.fd(fd).socket.send(data)

    def sys_recvfrom(self, core, proc, fd: int, buf: int,
                     count: int) -> int:
        """Receive into the user buffer; returns bytes received."""
        data = proc.fd(fd).socket.recv(count)
        if data:
            core.write(buf, data)
        return len(data)

    def sys_sendmsg(self, core, proc, fd: int, iov: list) -> int:
        """Gather send across an iovec."""
        total = 0
        for vaddr, length in iov:
            total += self.sys_sendto(core, proc, fd, vaddr, length)
        return total

    def sys_recvmsg(self, core, proc, fd: int, iov: list) -> int:
        """Scatter receive across an iovec."""
        total = 0
        for vaddr, length in iov:
            got = self.sys_recvfrom(core, proc, fd, vaddr, length)
            total += got
            if got < length:
                break
        return total

    def sys_socketpair(self, core, proc, family: int = net.AF_UNIX,
                       stype: int = net.SOCK_STREAM) -> tuple:
        """Create a connected pair; returns (fd, fd)."""
        left, right = self.kernel.net.socketpair(family, stype)
        return (proc.install_fd(FileDescriptor("socket", left)),
                proc.install_fd(FileDescriptor("socket", right)))

    # ------------------------------------------------------------------
    # Processes & identity
    # ------------------------------------------------------------------

    def sys_getpid(self, core, proc) -> int:
        """Caller's process id."""
        return proc.pid

    def sys_getuid(self, core, proc) -> int:
        """Real user id."""
        return proc.uid

    def sys_geteuid(self, core, proc) -> int:
        """Effective user id."""
        return proc.euid

    def sys_setuid(self, core, proc, uid: int) -> int:
        """Drop to ``uid`` (root only; irreversible)."""
        if proc.euid != 0:
            raise KernelError(fsmod.EPERM, "setuid requires root")
        proc.uid = proc.euid = uid
        return 0

    def sys_setreuid(self, core, proc, ruid: int, euid: int) -> int:
        """Set real and effective uid (root only)."""
        if proc.euid != 0:
            raise KernelError(fsmod.EPERM, "setreuid requires root")
        proc.uid, proc.euid = ruid, euid
        return 0

    def sys_setresuid(self, core, proc, ruid: int, euid: int,
                      suid: int) -> int:
        """Set real/effective/saved uid (root only)."""
        return self.sys_setreuid(core, proc, ruid, euid)

    def _clone_process(self, core, proc: Process, name: str) -> Process:
        child = self.kernel.create_process(f"{name}-child")
        for vaddr, region in proc.regions.items():
            ppns = self.kernel.mm.alloc_frames(region.num_pages, "fork")
            for src, dst in zip(region.ppns, ppns):
                data = self.kernel.machine.memory.read(src << 12, PAGE_SIZE)
                self.kernel.machine.memory.write(dst << 12, data)
            self.kernel.mm.map_region(child.page_table, vaddr, ppns,
                                      writable=region.writable, user=True,
                                      nx=not region.executable)
            child.add_region(VmRegion(vaddr=vaddr,
                                      num_pages=region.num_pages,
                                      ppns=ppns, writable=region.writable,
                                      executable=region.executable,
                                      kind=region.kind))
        for fd, entry in proc.fds.items():
            child.fds[fd] = FileDescriptor(entry.kind, entry.obj)
        child.uid, child.euid = proc.uid, proc.euid
        proc.children.append(child)
        return child

    def sys_fork(self, core, proc) -> int:
        """Clone the process with copied memory; returns child pid."""
        return self._clone_process(core, proc, proc.name).pid

    def sys_vfork(self, core, proc) -> int:
        """Modeled as fork."""
        return self._clone_process(core, proc, proc.name).pid

    def sys_clone(self, core, proc, flags: int = 0) -> int:
        """Modeled as fork (thread flags unsupported)."""
        return self._clone_process(core, proc, proc.name).pid

    def sys_execve(self, core, proc, path: str, argv: list = ()) -> int:
        """Validate the image path and rename the process."""
        self._charge_path_copy(path)
        self.kernel.fs.resolve(path)      # must exist and be reachable
        proc.name = path.rsplit("/", 1)[-1]
        return 0

    def sys_exit(self, core, proc, code: int = 0) -> int:
        """Terminate the process with ``code``."""
        proc.exited = True
        proc.exit_code = code
        self.kernel.scheduler.remove(proc)
        return code

    def sys_wait4(self, core, proc, pid: int = -1) -> tuple:
        """Reap an exited child; returns (pid, status)."""
        for child in proc.children:
            if child.exited and (pid in (-1, child.pid)):
                proc.children.remove(child)
                return child.pid, child.exit_code
        raise KernelError(ECHILD, "no exited children")

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def sys_uname(self, core, proc) -> dict:
        """Kernel identification strings."""
        return {"sysname": "Linux", "release": "5.16.0-rc4-veil",
                "machine": "x86_64"}

    def sys_getrandom(self, core, proc, buf: int, count: int) -> int:
        """Fill the user buffer from the boot-seeded entropy pool.

        The pool is a :class:`~repro.hw.rng.DeterministicRandom` seeded
        at table construction: the simulated machine's entropy is part
        of its measured, replayable state, so identical runs read
        identical "random" bytes (the byte-identical-trace contract).
        """
        data = self._entropy_pool.token_bytes(min(count, 256))
        core.write(buf, data)
        return len(data)

    def sys_clock_gettime(self, core, proc, clock_id: int = 0) -> int:
        """Nanoseconds derived from the cycle ledger at the 3 GHz clock."""
        return core.rdtsc() // 3

    def sys_nanosleep(self, core, proc, nanos: int) -> int:
        """Advance virtual time by ``nanos`` (charged as idle)."""
        self.kernel.machine.ledger.charge("idle", nanos * 3)
        return 0

    def sys_access(self, core, proc, path: str, mode: int = 0) -> int:
        """Existence/permission probe for a path."""
        self._charge_path_copy(path)
        self.kernel.fs.resolve(path)     # existence check (model has no
        return 0                         # per-user permission bits)

    def sys_faccessat(self, core, proc, dirfd: int, path: str,
                      mode: int = 0) -> int:
        """access: rooted model, dirfd ignored."""
        return self.sys_access(core, proc, path, mode)

    def sys_chdir(self, core, proc, path: str) -> int:
        """Set the process working directory."""
        self._charge_path_copy(path)
        inode = self.kernel.fs.resolve(path)
        if inode.itype != InodeType.DIR:
            raise KernelError(fsmod.ENOTDIR, path)
        proc.cwd = path
        return 0

    def sys_getcwd(self, core, proc) -> str:
        """Current working directory path."""
        return getattr(proc, "cwd", "/")

    def sys_umask(self, core, proc, mask: int) -> int:
        """Set the file-creation mask; returns the previous one."""
        previous = getattr(proc, "umask", 0o022)
        proc.umask = mask & 0o777
        return previous

    def sys_getppid(self, core, proc) -> int:
        """Parent process id (0 for init-spawned)."""
        return getattr(proc, "ppid", 0)

    def sys_getpgid(self, core, proc, pid: int = 0) -> int:
        """Process group id (== pid in this model)."""
        return proc.pid

    def sys_gettid(self, core, proc) -> int:
        """Thread id (== pid; single-threaded processes)."""
        return proc.pid

    def sys_sched_yield(self, core, proc) -> int:
        """Rotate the run queue."""
        self.kernel.scheduler.pick_next()
        return 0

    def sys_sync(self, core, proc) -> int:
        """Flush the filesystem to the host block device."""
        from .diskfs import DiskSync
        if not hasattr(self.kernel, "_disk_sync"):
            self.kernel._disk_sync = DiskSync(self.kernel)
        self.kernel._disk_sync.sync(core)
        return 0

    def sys_fsync(self, core, proc, fd: int) -> int:
        """Flush an fd (metadata model: validity check only)."""
        proc.fd(fd)                       # must be a valid descriptor
        return 0

    def sys_fdatasync(self, core, proc, fd: int) -> int:
        """Data-only fsync (same as fsync here)."""
        return self.sys_fsync(core, proc, fd)

    def sys_madvise(self, core, proc, addr: int, length: int,
                    advice: int = 0) -> int:
        """Advice on a mapped region (validated, then ignored)."""
        if proc.region_containing(addr) is None:
            raise KernelError(EINVAL, f"madvise: no region at {addr:#x}")
        return 0

    def sys_msync(self, core, proc, addr: int, length: int,
                  flags: int = 0) -> int:
        """Synchronize a mapped region (validated no-op)."""
        if proc.region_containing(addr) is None:
            raise KernelError(EINVAL, f"msync: no region at {addr:#x}")
        return 0

    def sys_linkat(self, core, proc, olddirfd: int, oldpath: str,
                   newdirfd: int, newpath: str) -> int:
        """linkat: rooted model, dirfds ignored."""
        return self.sys_link(core, proc, oldpath, newpath)

    def sys_symlinkat(self, core, proc, target: str, newdirfd: int,
                      linkpath: str) -> int:
        """symlinkat: rooted model, dirfd ignored."""
        return self.sys_symlink(core, proc, target, linkpath)

    def sys_renameat(self, core, proc, olddirfd: int, oldpath: str,
                     newdirfd: int, newpath: str) -> int:
        """renameat: rooted model, dirfds ignored."""
        return self.sys_rename(core, proc, oldpath, newpath)

    def sys_fchmodat(self, core, proc, dirfd: int, path: str,
                     mode: int) -> int:
        """fchmodat: rooted model, dirfd ignored."""
        return self.sys_chmod(core, proc, path, mode)

    def sys_ioctl(self, core, proc, fd: int, request: int, arg=None):
        """Dispatch device ioctls (e.g. /dev/veil) or ENOTTY."""
        entry = proc.fd(fd)
        if entry.kind == "file" and \
                entry.file.inode.itype == InodeType.DEVICE:
            handler = self.kernel.device_handlers.get(
                entry.file.inode.device)
            if handler is not None:
                return handler(core, proc, request, arg)
        raise KernelError(ENOTTY, f"ioctl {request:#x} unsupported")
