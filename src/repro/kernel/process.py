"""Processes: address space, fd table, credentials, memory regions."""

from __future__ import annotations

import itertools
import typing
from dataclasses import dataclass

from ..errors import KernelError
from ..hw.pagetable import GuestPageTable
from . import layout
from .fs import EBADF, OpenFile, Pipe
from .net import Socket

if typing.TYPE_CHECKING:
    from ..core.services.enc import Enclave


@dataclass
class FileDescriptor:
    """One fd-table slot: a file, socket, or pipe end."""

    kind: str                    # "file" | "socket" | "pipe_read" | "pipe_write"
    obj: object

    @property
    def file(self) -> OpenFile:
        if self.kind != "file":
            raise KernelError(EBADF, f"fd is a {self.kind}, not a file")
        return typing.cast(OpenFile, self.obj)

    @property
    def socket(self) -> Socket:
        if self.kind != "socket":
            raise KernelError(EBADF, f"fd is a {self.kind}, not a socket")
        return typing.cast(Socket, self.obj)

    @property
    def pipe(self) -> Pipe:
        if self.kind not in ("pipe_read", "pipe_write"):
            raise KernelError(EBADF, f"fd is a {self.kind}, not a pipe")
        return typing.cast(Pipe, self.obj)


@dataclass
class VmRegion:
    """A mapped user region (for mmap/munmap bookkeeping)."""

    vaddr: int
    num_pages: int
    ppns: list
    writable: bool
    executable: bool
    kind: str = "anon"           # "anon" | "file" | "stack" | "code" | "heap"


class Process:
    """A user process."""

    _pids = itertools.count(1)

    def __init__(self, name: str, page_table: GuestPageTable,
                 pid: int | None = None):
        # A kernel passes its own per-instance pid so identical runs on
        # fresh machines allocate identical pids (trace determinism);
        # the process-wide counter is the standalone-construction
        # fallback only.
        self.pid = next(Process._pids) if pid is None else pid
        self.name = name
        self.page_table = page_table
        self.fds: dict[int, FileDescriptor] = {}
        self._next_fd = 3            # 0/1/2 reserved for stdio
        self.uid = 0
        self.euid = 0
        self.regions: dict[int, VmRegion] = {}
        self._next_mmap = layout.USER_MMAP_BASE
        self._brk = layout.USER_HEAP_BASE
        self.enclave: "Enclave | None" = None
        self.exited = False
        self.exit_code: int | None = None
        self.children: list["Process"] = []

    # -- fd table ----------------------------------------------------------

    def install_fd(self, entry: FileDescriptor, *, at: int | None = None) -> int:
        """Place an entry in the fd table; returns the fd."""
        fd = at if at is not None else self._next_fd
        if at is None:
            self._next_fd += 1
        elif at >= self._next_fd:
            self._next_fd = at + 1
        self.fds[fd] = entry
        return fd

    def fd(self, number: int) -> FileDescriptor:
        """Look up an fd (EBADF if absent)."""
        entry = self.fds.get(number)
        if entry is None:
            raise KernelError(EBADF, f"bad fd {number}")
        return entry

    def remove_fd(self, number: int) -> FileDescriptor:
        """Remove and return an fd-table entry."""
        entry = self.fds.pop(number, None)
        if entry is None:
            raise KernelError(EBADF, f"bad fd {number}")
        return entry

    def lowest_free_fd(self) -> int:
        """Smallest unused fd number."""
        fd = 0
        while fd in self.fds:
            fd += 1
        return fd

    # -- memory regions -------------------------------------------------------

    def reserve_mmap_range(self, num_pages: int) -> int:
        """Reserve address space for an mmap."""
        vaddr = self._next_mmap
        self._next_mmap += num_pages * 4096
        return vaddr

    def add_region(self, region: VmRegion) -> None:
        """Record a mapped region."""
        self.regions[region.vaddr] = region

    def find_region(self, vaddr: int) -> VmRegion:
        """Region starting exactly at ``vaddr``."""
        region = self.regions.get(vaddr)
        if region is None:
            raise KernelError(22, f"no region at {vaddr:#x}")
        return region

    def region_containing(self, vaddr: int) -> VmRegion | None:
        """Region covering ``vaddr``, if any."""
        for region in self.regions.values():
            end = region.vaddr + region.num_pages * 4096
            if region.vaddr <= vaddr < end:
                return region
        return None

    @property
    def brk(self) -> int:
        return self._brk

    def set_brk(self, new_brk: int) -> None:
        """Record the new heap break."""
        self._brk = new_brk
