"""Attacker primitives after a kernel compromise.

The paper's threat model (section 4.1) assumes the attacker eventually
obtains arbitrary kernel-privilege execution.  :class:`AttackerContext`
grants exactly that: every primitive here runs with the kernel's CPL-0
context on its VMPL -- and *nothing more*.  Whether an attack succeeds is
then decided by the simulated hardware (RMP checks) and Veil's software
checks, which is the property the section 8 experiments validate.
"""

from __future__ import annotations

import typing

from ..errors import CvmHalted, GeneralProtectionFault, InvalidInstruction
from ..hw.memory import PAGE_SIZE
from ..hw.rmp import Access
from . import layout

if typing.TYPE_CHECKING:
    from ..hw.vcpu import VirtualCpu
    from .kernel import Kernel


class AttackerContext:
    """Arbitrary kernel-privilege read/write/execute primitives."""

    def __init__(self, kernel: "Kernel", core: "VirtualCpu"):
        self.kernel = kernel
        self.core = core

    # -- raw memory primitives (kernel context, RMP-checked) ----------------

    def read_virt(self, vaddr: int, length: int) -> bytes:
        """Kernel-context virtual read (RMP still applies)."""
        with self.kernel.kernel_context(self.core) as core:
            return core.read(vaddr, length)

    def write_virt(self, vaddr: int, data: bytes) -> None:
        """Kernel-context virtual write (RMP still applies)."""
        with self.kernel.kernel_context(self.core) as core:
            core.write(vaddr, data)

    def read_phys(self, paddr: int, length: int) -> bytes:
        """Read physical memory through the kernel direct map."""
        return self.read_virt(layout.direct_map_vaddr(paddr), length)

    def write_phys(self, paddr: int, data: bytes) -> None:
        """Write physical memory through the kernel direct map."""
        self.write_virt(layout.direct_map_vaddr(paddr), data)

    # -- page-table manipulation (the "write gadget" attacks) -----------------

    def map_foreign_page(self, ppn: int, *, writable: bool = True) -> int:
        """Map an arbitrary physical page into the kernel address space.

        Always *succeeds* (the kernel owns its page tables); accessing the
        mapping is what the RMP may veto.  Returns the chosen vaddr.
        """
        table = self.kernel.kernel_table
        assert table is not None
        vaddr = 0xffff_ffff_c000_0000 + ppn * PAGE_SIZE
        table.map(layout.vpn(vaddr), ppn, writable=writable, user=False,
                  nx=True)
        return vaddr

    def disable_pt_write_protection(self, vaddr: int) -> None:
        """Flip a kernel PTE writable (modeling a write gadget that unsets
        W^X bits in the kernel's own page tables)."""
        table = self.kernel.kernel_table
        assert table is not None
        table.protect(layout.vpn(vaddr), writable=True, nx=False)

    # -- VMPL / VMSA attacks --------------------------------------------------

    def try_rmpadjust(self, ppn: int, *, target_vmpl: int,
                      perms: Access = Access.all()):
        """Attempt RMPADJUST from the (compromised) kernel's VMPL.

        Returns the exception describing why the hardware refused, since
        under Veil this must never succeed (Table 1 row 2).
        """
        with self.kernel.kernel_context(self.core) as core:
            try:
                core.rmpadjust(ppn=ppn, target_vmpl=target_vmpl,
                               perms=perms)
            except (InvalidInstruction, GeneralProtectionFault,
                    CvmHalted) as denied:
                return denied
        return None

    def try_spawn_vcpu_at_vmpl(self, vcpu_id: int, vmpl: int) -> None:
        """Attempt to forge a VCPU instance at a privileged VMPL.

        The attacker crafts a fake "VMSA" in a page it controls and asks
        the hypervisor to register and start it.  The enter path validates
        the RMP's VMSA marking, which only RMPADJUST (denied above) can
        set, so the CVM halts.
        """
        fake_ppn = self.kernel.mm.alloc_frame("fake-vmsa")
        with self.kernel.kernel_context(self.core) as core:
            ghcb = core.current_ghcb()
            ghcb.write_message(self.kernel.machine.memory, {
                "op": "register_vmsa", "vmsa_ppn": fake_ppn})
            core.vmgexit()

    # -- audit-log tampering ------------------------------------------------------

    def tamper_audit_storage(self) -> str:
        """Attempt to rewrite stored audit records.

        Returns ``"tampered"`` if the storage was modified (the unprotected
        Kaudit baseline), otherwise the hardware fault propagates.
        """
        from .audit import InMemoryAuditSink
        sink = self.kernel.audit.sink
        if isinstance(sink, InMemoryAuditSink):
            if not sink.records:
                raise ValueError("no records to tamper with")
            sink.tamper(0, b'{"forged": true}')
            return "tampered"
        # VeilS-LOG sink: storage lives in DomSER physical pages.  Write
        # through the direct map -- the RMP will fault and halt the CVM.
        storage_ppn = getattr(sink, "storage_ppns")[0]
        self.write_phys(storage_ppn * PAGE_SIZE, b'{"forged": true}')
        return "tampered"
