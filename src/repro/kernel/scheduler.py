"""Round-robin scheduler with timer-driven ticks.

Workload drivers call :meth:`Scheduler.maybe_tick` as virtual time passes;
every ``tick_interval_cycles`` the scheduler takes a timer interrupt, which
is an *automatic exit* on the running core.  For enclave-running processes
that exit is what the hypervisor relays to DomUNT (paper section 6.2), so
the enclave-exit rate of Fig. 5 emerges from this path plus syscalls.
"""

from __future__ import annotations

import typing

from .process import Process

if typing.TYPE_CHECKING:
    from ..hw.vcpu import VirtualCpu


#: Default timer period: 4 ms at the nominal 3 GHz clock (250 Hz tick).
DEFAULT_TICK_CYCLES = 12_000_000


class Scheduler:
    """Cooperative round-robin over runnable processes."""

    def __init__(self, tick_interval_cycles: int = DEFAULT_TICK_CYCLES):
        self.tick_interval_cycles = tick_interval_cycles
        self.runnable: list[Process] = []
        self.current: Process | None = None
        self._last_tick_total = 0
        self.tick_count = 0
        self.context_switches = 0

    def add(self, process: Process) -> None:
        """Make a process runnable."""
        self.runnable.append(process)
        if self.current is None:
            self.current = process

    def remove(self, process: Process) -> None:
        """Drop a process from the run queue."""
        if process in self.runnable:
            self.runnable.remove(process)
        if self.current is process:
            self.current = self.runnable[0] if self.runnable else None

    def pick_next(self) -> Process | None:
        """Advance round-robin; returns the new current."""
        if not self.runnable:
            return None
        if self.current in self.runnable:
            index = self.runnable.index(self.current)
            self.current = self.runnable[(index + 1) % len(self.runnable)]
        else:
            self.current = self.runnable[0]
        self.context_switches += 1
        return self.current

    def maybe_tick(self, core: "VirtualCpu") -> bool:
        """Fire a timer interrupt if a tick interval has elapsed.

        Returns True if a tick fired.  The automatic exit goes through the
        hypervisor, which (for enclave contexts) performs the relay dance.
        """
        now = core.machine.ledger.total
        if now - self._last_tick_total < self.tick_interval_cycles:
            return False
        self._last_tick_total = now
        self.tick_count += 1
        core.automatic_exit("timer")
        self.pick_next()
        # Context switch: the next process runs under a different CR3,
        # so the core's cached translations are architecturally gone.
        core.flush_tlb()
        return True
