"""Loadable kernel modules: images, signatures, and the native loader.

A module image models a relocatable ``.ko``: a text blob containing 8-byte
placeholder slots that must be patched with resolved kernel-symbol
addresses, plus an RSA signature over (name || text || relocation table).

The *native* loader verifies the signature and then performs load,
relocation, and mapping itself.  Under VeilS-KCI (section 6.1) everything
except memory allocation is delegated to the protected service, closing
the TOCTOU window between signature check and installation.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from ..crypto import RsaKeyPair, RsaPublicKey
from ..errors import KernelError, SecurityViolation
from ..hw.memory import PAGE_SIZE
from . import layout

if typing.TYPE_CHECKING:
    from .kernel import Kernel


@dataclass(frozen=True)
class Relocation:
    """Patch the 8 bytes at ``offset`` with the address of ``symbol``."""

    offset: int
    symbol: str


@dataclass
class ModuleImage:
    """An on-disk kernel module."""

    name: str
    text: bytes
    relocations: tuple
    signature: bytes = b""
    #: Zero-initialized data/bss pages beyond the text (so a small binary
    #: can have a larger installed footprint, like CS1's 4728 B -> 24 KiB).
    extra_data_pages: int = 0

    def signed_blob(self) -> bytes:
        """The byte string the module signature covers."""
        reloc_blob = b"".join(
            r.offset.to_bytes(8, "little") + r.symbol.encode() + b"\x00"
            for r in self.relocations)
        return (self.name.encode() + b"\x00" + self.text + reloc_blob +
                self.extra_data_pages.to_bytes(4, "little"))

    def sign(self, key: RsaKeyPair) -> "ModuleImage":
        """Return a signed copy of this image."""
        return ModuleImage(self.name, self.text, self.relocations,
                           key.sign(self.signed_blob()),
                           self.extra_data_pages)

    @property
    def text_pages(self) -> int:
        return (len(self.text) + PAGE_SIZE - 1) // PAGE_SIZE

    @property
    def total_pages(self) -> int:
        return max(1, self.text_pages + self.extra_data_pages)


@dataclass
class LoadedModule:
    """A module resident in kernel memory."""

    image: ModuleImage
    vaddr: int
    ppns: list
    loaded_by: str = "kernel"     # "kernel" (native) or "veils-kci"

    @property
    def size_bytes(self) -> int:
        return len(self.ppns) * PAGE_SIZE


#: Native kernel-side work for module install / removal beyond signature
#: verification and copies (allocation, sysfs, kallsyms, RCU teardown).
#: Calibrated so CS1's ~48-55k extra VMPL cycles land at +5.7% / +4.2%.
MODULE_LOAD_BASE_CYCLES = 600_000
MODULE_UNLOAD_BASE_CYCLES = 1_080_000


def build_module(name: str, *, text_size: int = 4096,
                 relocation_count: int = 8,
                 extra_data_pages: int = 0,
                 signing_key: RsaKeyPair | None = None,
                 fill: bytes = b"\x90") -> ModuleImage:
    """Synthesize a module image with evenly spaced relocation slots."""
    text = bytearray(fill * text_size)[:text_size]
    relocations = []
    if relocation_count:
        stride = max(8, (text_size - 8) // max(relocation_count, 1))
        for index in range(relocation_count):
            offset = index * stride
            if offset + 8 > text_size:
                break
            text[offset:offset + 8] = b"\x00" * 8
            relocations.append(Relocation(offset,
                                          f"ksym_{index % 16}"))
    image = ModuleImage(name=name, text=bytes(text),
                        relocations=tuple(relocations),
                        extra_data_pages=extra_data_pages)
    if signing_key is not None:
        image = image.sign(signing_key)
    return image


class ModuleLoader:
    """The kernel's native (unprotected) module load/unload path."""

    def __init__(self, kernel: "Kernel",
                 trusted_key: RsaPublicKey | None = None):
        self.kernel = kernel
        self.trusted_key = trusted_key
        self.loaded: dict[str, LoadedModule] = {}
        self._next_vaddr = layout.KERNEL_MODULE_BASE

    def allocate_region(self, image: ModuleImage) -> tuple[int, list]:
        """Memory allocation step (stays in the kernel even under KCI)."""
        pages = image.total_pages
        ppns = self.kernel.mm.alloc_frames(pages, f"module:{image.name}")
        vaddr = self._next_vaddr
        self._next_vaddr += pages * PAGE_SIZE
        return vaddr, ppns

    def verify_signature(self, image: ModuleImage) -> None:
        """Check the image against the trusted key."""
        if self.trusted_key is None:
            raise SecurityViolation("no trusted module signing key")
        if not image.signature:
            raise SecurityViolation(f"module {image.name} is unsigned")
        self.trusted_key.verify(image.signed_blob(), image.signature)

    def resolve_symbol(self, symbol: str) -> int:
        """Kernel-exported symbol address."""
        addr = self.kernel.symbol_table.get(symbol)
        if addr is None:
            raise KernelError(22, f"unknown kernel symbol {symbol!r}")
        return addr

    def install_text(self, core, image: ModuleImage, vaddr: int,
                     ppns: list, *, writable_mapping: bool) -> None:
        """Copy text into the allocated frames, apply relocations, map."""
        self.kernel.mm.map_region(self.kernel.kernel_table, vaddr, ppns,
                                  writable=True, user=False, nx=False)
        core.write(vaddr, image.text)
        for reloc in image.relocations:
            resolved = self.resolve_symbol(reloc.symbol)
            core.write(vaddr + reloc.offset,
                       resolved.to_bytes(8, "little"))
        if not writable_mapping:
            for index in range(len(ppns)):
                self.kernel.kernel_table.protect(
                    layout.vpn(vaddr) + index, writable=False)

    def load(self, core, image: ModuleImage) -> LoadedModule:
        """Native load path (no VMPL protection of the installed text)."""
        if image.name in self.loaded:
            raise KernelError(17, f"module {image.name} already loaded")
        self.kernel.charge_compute(MODULE_LOAD_BASE_CYCLES, "module")
        self.verify_signature(image)
        self.kernel.charge_compute(self.kernel.machine.cost.signature_verify,
                                   category="crypto")
        vaddr, ppns = self.allocate_region(image)
        self.install_text(core, image, vaddr, ppns, writable_mapping=False)
        module = LoadedModule(image=image, vaddr=vaddr, ppns=ppns)
        self.loaded[image.name] = module
        self.kernel.audit.log_event(core, "module_load",
                                    {"name": image.name})
        return module

    def unload(self, core, name: str) -> None:
        """Remove a loaded module and free its region."""
        module = self.loaded.pop(name, None)
        if module is None:
            raise KernelError(2, f"module {name} not loaded")
        self.kernel.charge_compute(MODULE_UNLOAD_BASE_CYCLES, "module")
        self.kernel.mm.unmap_region(self.kernel.kernel_table, module.vaddr,
                                    len(module.ppns))
        for ppn in module.ppns:
            self.kernel.mm.free_frame(ppn)
        self.kernel.audit.log_event(core, "module_unload", {"name": name})
