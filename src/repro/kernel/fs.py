"""In-memory filesystem for the guest kernel.

A classic inode design: directories map names to inode numbers; regular
files hold byte contents; symlinks hold target paths.  Open files are
represented by :class:`OpenFile` descriptions that processes reference
through their fd tables.

File *contents* live in Python bytes for speed, but every syscall-level
read/write copies through the simulated user buffer (see
:mod:`repro.kernel.syscalls`), so protection and copy costs are faithful
where it matters.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..errors import KernelError

# errno values used across the kernel model.
EPERM, ENOENT, EIO, EBADF, EEXIST, ENOTDIR, EISDIR, EINVAL = \
    1, 2, 5, 9, 17, 20, 21, 22
ENAMETOOLONG, ELOOP, ENOTEMPTY, ESPIPE = 36, 40, 39, 29

O_RDONLY, O_WRONLY, O_RDWR = 0, 1, 2
O_ACCMODE = 3
O_CREAT, O_EXCL, O_TRUNC, O_APPEND = 0o100, 0o200, 0o1000, 0o2000

SEEK_SET, SEEK_CUR, SEEK_END = 0, 1, 2

_MAX_SYMLINK_DEPTH = 8
_MAX_NAME = 255


class InodeType(enum.Enum):
    """Kinds of filesystem object an inode can be."""
    FILE = "file"
    DIR = "dir"
    SYMLINK = "symlink"
    FIFO = "fifo"
    DEVICE = "device"


@dataclass
class Inode:
    ino: int
    itype: InodeType
    mode: int = 0o644
    uid: int = 0
    nlink: int = 1
    data: bytearray = field(default_factory=bytearray)     # FILE
    children: dict = field(default_factory=dict)           # DIR
    target: str = ""                                       # SYMLINK
    pipe: "Pipe | None" = None                             # FIFO
    device: str = ""                                       # DEVICE

    @property
    def size(self) -> int:
        return len(self.data)


class Pipe:
    """Byte FIFO shared by a read end and a write end."""

    def __init__(self, capacity: int = 65536):
        self.buffer = bytearray()
        self.capacity = capacity
        self.read_open = True
        self.write_open = True

    def write(self, data: bytes) -> int:
        """Append up to the remaining capacity; returns bytes taken."""
        if not self.read_open:
            raise KernelError(32, "EPIPE: read end closed")
        room = self.capacity - len(self.buffer)
        accepted = data[:room]
        self.buffer.extend(accepted)
        return len(accepted)

    def read(self, count: int) -> bytes:
        """Drain up to ``count`` buffered bytes."""
        out = bytes(self.buffer[:count])
        del self.buffer[:count]
        return out


@dataclass
class OpenFile:
    """An open file description (shared across dup'd fds)."""

    inode: Inode
    flags: int
    offset: int = 0
    #: For FIFO ends: which side of the pipe this description is.
    pipe_end: str = ""

    def readable(self) -> bool:
        """Whether the open flags permit reading."""
        return (self.flags & O_ACCMODE) in (O_RDONLY, O_RDWR)

    def writable(self) -> bool:
        """Whether the open flags permit writing."""
        return (self.flags & O_ACCMODE) in (O_WRONLY, O_RDWR)


class FileSystem:
    """The mounted root filesystem."""

    def __init__(self):
        self._ino_counter = itertools.count(1)
        self.root = self._new_inode(InodeType.DIR, mode=0o755)

    # -- inode helpers --------------------------------------------------------

    def _new_inode(self, itype: InodeType, mode: int = 0o644) -> Inode:
        return Inode(ino=next(self._ino_counter), itype=itype, mode=mode)

    # -- path resolution ---------------------------------------------------------

    def _split(self, path: str) -> list[str]:
        if not path or not path.startswith("/"):
            raise KernelError(EINVAL, f"path must be absolute: {path!r}")
        parts = [p for p in path.split("/") if p and p != "."]
        for part in parts:
            if len(part) > _MAX_NAME:
                raise KernelError(ENAMETOOLONG, part)
        return parts

    def resolve(self, path: str, *, follow: bool = True,
                _depth: int = 0) -> Inode:
        """Resolve an absolute path to an inode."""
        if _depth > _MAX_SYMLINK_DEPTH:
            raise KernelError(ELOOP, path)
        node = self.root
        parts = self._split(path)
        for index, part in enumerate(parts):
            if node.itype != InodeType.DIR:
                raise KernelError(ENOTDIR, path)
            if part == "..":
                # Flat model: parent tracking omitted; ".." stays at root
                # for the root-relative paths the workloads use.
                node = self.root
                continue
            child = node.children.get(part)
            if child is None:
                raise KernelError(ENOENT, path)
            is_last = index == len(parts) - 1
            if child.itype == InodeType.SYMLINK and (follow or not is_last):
                child = self.resolve(child.target, follow=follow,
                                     _depth=_depth + 1)
            node = child
        return node

    def resolve_parent(self, path: str) -> tuple[Inode, str]:
        """Resolve to (parent directory inode, final component name)."""
        parts = self._split(path)
        if not parts:
            raise KernelError(EINVAL, "cannot operate on /")
        parent_path = "/" + "/".join(parts[:-1])
        parent = self.resolve(parent_path) if parts[:-1] else self.root
        if parent.itype != InodeType.DIR:
            raise KernelError(ENOTDIR, path)
        return parent, parts[-1]

    def exists(self, path: str) -> bool:
        """Whether a path resolves."""
        try:
            self.resolve(path)
            return True
        except KernelError:
            return False

    # -- namespace operations ------------------------------------------------------

    def create(self, path: str, *, mode: int = 0o644,
               exclusive: bool = False) -> Inode:
        """Create (or reuse) a regular file; returns its inode."""
        parent, name = self.resolve_parent(path)
        existing = parent.children.get(name)
        if existing is not None:
            if exclusive:
                raise KernelError(EEXIST, path)
            if existing.itype == InodeType.DIR:
                raise KernelError(EISDIR, path)
            return existing
        inode = self._new_inode(InodeType.FILE, mode)
        parent.children[name] = inode
        return inode

    def mkdir(self, path: str, mode: int = 0o755) -> Inode:
        """Create a directory."""
        parent, name = self.resolve_parent(path)
        if name in parent.children:
            raise KernelError(EEXIST, path)
        inode = self._new_inode(InodeType.DIR, mode)
        parent.children[name] = inode
        return inode

    def mknod_fifo(self, path: str) -> Inode:
        """Create a named FIFO."""
        parent, name = self.resolve_parent(path)
        if name in parent.children:
            raise KernelError(EEXIST, path)
        inode = self._new_inode(InodeType.FIFO)
        inode.pipe = Pipe()
        parent.children[name] = inode
        return inode

    def symlink(self, target: str, linkpath: str) -> Inode:
        """Create a symbolic link."""
        parent, name = self.resolve_parent(linkpath)
        if name in parent.children:
            raise KernelError(EEXIST, linkpath)
        inode = self._new_inode(InodeType.SYMLINK)
        inode.target = target
        parent.children[name] = inode
        return inode

    def link(self, oldpath: str, newpath: str) -> None:
        """Create a hard link (bumps nlink)."""
        inode = self.resolve(oldpath, follow=False)
        if inode.itype == InodeType.DIR:
            raise KernelError(EPERM, "hard link to directory")
        parent, name = self.resolve_parent(newpath)
        if name in parent.children:
            raise KernelError(EEXIST, newpath)
        parent.children[name] = inode
        inode.nlink += 1

    def unlink(self, path: str) -> None:
        """Remove a non-directory name."""
        parent, name = self.resolve_parent(path)
        inode = parent.children.get(name)
        if inode is None:
            raise KernelError(ENOENT, path)
        if inode.itype == InodeType.DIR:
            raise KernelError(EISDIR, path)
        del parent.children[name]
        inode.nlink -= 1

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        parent, name = self.resolve_parent(path)
        inode = parent.children.get(name)
        if inode is None:
            raise KernelError(ENOENT, path)
        if inode.itype != InodeType.DIR:
            raise KernelError(ENOTDIR, path)
        if inode.children:
            raise KernelError(ENOTEMPTY, path)
        del parent.children[name]

    def rename(self, oldpath: str, newpath: str) -> None:
        """Move a name, replacing any existing target."""
        old_parent, old_name = self.resolve_parent(oldpath)
        inode = old_parent.children.get(old_name)
        if inode is None:
            raise KernelError(ENOENT, oldpath)
        new_parent, new_name = self.resolve_parent(newpath)
        new_parent.children[new_name] = inode
        del old_parent.children[old_name]

    def listdir(self, path: str) -> list[str]:
        """Sorted child names of a directory."""
        inode = self.resolve(path)
        if inode.itype != InodeType.DIR:
            raise KernelError(ENOTDIR, path)
        return sorted(inode.children)

    # -- file I/O ---------------------------------------------------------------------

    def open(self, path: str, flags: int, mode: int = 0o644) -> OpenFile:
        """Open (honouring O_CREAT/O_EXCL/O_TRUNC); returns a description."""
        if flags & O_CREAT:
            inode = self.create(path, mode=mode,
                                exclusive=bool(flags & O_EXCL))
        else:
            inode = self.resolve(path)
        if inode.itype == InodeType.DIR and (flags & O_ACCMODE) != O_RDONLY:
            raise KernelError(EISDIR, path)
        handle = OpenFile(inode=inode, flags=flags)
        if inode.itype == InodeType.FILE and flags & O_TRUNC and \
                handle.writable():
            inode.data = bytearray()
        if inode.itype == InodeType.FIFO:
            handle.pipe_end = "write" if handle.writable() else "read"
        return handle

    def read(self, handle: OpenFile, count: int) -> bytes:
        """Read from the description's offset."""
        if not handle.readable():
            raise KernelError(EBADF, "not open for reading")
        inode = handle.inode
        if inode.itype == InodeType.FIFO:
            assert inode.pipe is not None
            return inode.pipe.read(count)
        if inode.itype == InodeType.DIR:
            raise KernelError(EISDIR, "read on directory")
        data = bytes(inode.data[handle.offset:handle.offset + count])
        handle.offset += len(data)
        return data

    def write(self, handle: OpenFile, data: bytes) -> int:
        """Write at the description's offset (O_APPEND honoured)."""
        if not handle.writable():
            raise KernelError(EBADF, "not open for writing")
        inode = handle.inode
        if inode.itype == InodeType.FIFO:
            assert inode.pipe is not None
            return inode.pipe.write(data)
        if handle.flags & O_APPEND:
            handle.offset = inode.size
        end = handle.offset + len(data)
        if end > inode.size:
            inode.data.extend(b"\x00" * (end - inode.size))
        inode.data[handle.offset:end] = data
        handle.offset = end
        return len(data)

    def lseek(self, handle: OpenFile, offset: int, whence: int) -> int:
        """Reposition a description's offset."""
        if handle.inode.itype == InodeType.FIFO:
            raise KernelError(ESPIPE, "seek on pipe")
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = handle.offset + offset
        elif whence == SEEK_END:
            new = handle.inode.size + offset
        else:
            raise KernelError(EINVAL, f"whence {whence}")
        if new < 0:
            raise KernelError(EINVAL, "negative offset")
        handle.offset = new
        return new

    def truncate(self, path_or_handle, length: int) -> None:
        """Resize a file (by path or open description)."""
        if length < 0:
            raise KernelError(EINVAL, "negative length")
        if isinstance(path_or_handle, str):
            inode = self.resolve(path_or_handle)
        else:
            inode = path_or_handle.inode
        if inode.itype != InodeType.FILE:
            raise KernelError(EINVAL, "truncate on non-file")
        if length <= inode.size:
            del inode.data[length:]
        else:
            inode.data.extend(b"\x00" * (length - inode.size))

    def stat(self, path: str) -> dict:
        """Metadata for a path."""
        inode = self.resolve(path)
        return {"ino": inode.ino, "type": inode.itype.value,
                "size": inode.size, "mode": inode.mode,
                "nlink": inode.nlink}
