"""Guest virtual-memory layout constants.

A simplified x86-64-style split:

* user space occupies the low canonical half;
* the kernel lives in the high half with a direct (linear) mapping of all
  physical memory plus a dedicated text region.

Veil-specific reserved regions (monitor image, service image, log storage)
are carved from physical memory at boot by :mod:`repro.core.boot`; their
*physical* placement is what VMPL protection applies to.
"""

from __future__ import annotations

from ..hw.memory import PAGE_SHIFT, PAGE_SIZE

# ---- user space -----------------------------------------------------------
USER_CODE_BASE = 0x0000_0000_0040_0000
USER_HEAP_BASE = 0x0000_0000_1000_0000
USER_MMAP_BASE = 0x0000_0000_4000_0000
USER_STACK_TOP = 0x0000_0000_7fff_f000
USER_SPACE_END = 0x0000_0000_8000_0000

# ---- enclave region (inside the process address space) ---------------------
ENCLAVE_BASE = 0x0000_0000_2000_0000
ENCLAVE_MAX_BYTES = 0x0000_0000_1000_0000     # 256 MiB window

# ---- kernel space ------------------------------------------------------------
KERNEL_TEXT_BASE = 0xffff_ffff_8000_0000
KERNEL_DATA_BASE = 0xffff_ffff_9000_0000
KERNEL_MODULE_BASE = 0xffff_ffff_a000_0000
KERNEL_DIRECT_BASE = 0xffff_8880_0000_0000    # direct map of all phys mem

#: Size of the kernel's text region in pages (models vmlinux text).
KERNEL_TEXT_PAGES = 512
#: Static kernel data pages.
KERNEL_DATA_PAGES = 256


def direct_map_vaddr(paddr: int) -> int:
    """Kernel-direct-map virtual address of a physical byte address."""
    return KERNEL_DIRECT_BASE + paddr


def vpn(vaddr: int) -> int:
    """Virtual page number of an address."""
    return vaddr >> PAGE_SHIFT


def page_aligned(addr: int) -> bool:
    """Whether an address is page-aligned."""
    return (addr & (PAGE_SIZE - 1)) == 0


def align_up(addr: int) -> int:
    """Round an address up to the next page boundary."""
    return (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
