"""Loopback network stack: AF_INET stream sockets and socketpairs.

Enough of a sockets layer to support the paper's workloads (lighttpd,
NGINX, memcached models): bind/listen/accept/connect plus buffered
send/recv over an in-kernel loopback.  Connections are synchronous --
``connect`` immediately queues on the listener's backlog and ``accept``
pops it -- because the workloads are closed-loop benchmarks.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field

from ..errors import KernelError

AF_INET = 2
AF_UNIX = 1
SOCK_STREAM = 1
SOCK_DGRAM = 2

EADDRINUSE, ECONNREFUSED, ENOTCONN, EOPNOTSUPP = 98, 111, 107, 95
EINVAL = 22


class SocketState(enum.Enum):
    """Lifecycle states of a kernel socket."""
    NEW = "new"
    BOUND = "bound"
    LISTENING = "listening"
    CONNECTED = "connected"
    CLOSED = "closed"


@dataclass
class Endpoint:
    """One direction of a connection: bytes this endpoint can read."""

    rx: bytearray = field(default_factory=bytearray)
    peer_closed: bool = False


class Socket:
    """A kernel socket object (referenced by fds via OpenSocket)."""

    _ids = itertools.count(1)

    def __init__(self, family: int, stype: int):
        if family not in (AF_INET, AF_UNIX):
            raise KernelError(EINVAL, f"unsupported family {family}")
        if stype not in (SOCK_STREAM, SOCK_DGRAM):
            raise KernelError(EINVAL, f"unsupported type {stype}")
        self.sock_id = next(Socket._ids)
        self.family = family
        self.stype = stype
        self.state = SocketState.NEW
        self.addr: tuple[str, int] | None = None
        #: Pending connections, accepted in FIFO order (popleft, not the
        #: O(n) ``list.pop(0)`` this used to be).
        self.backlog: deque["Socket"] = deque()
        self.backlog_limit = 0
        self.endpoint: Endpoint | None = None
        self.peer: "Socket | None" = None

    def _require_stream(self, op: str) -> None:
        """Datagram sockets are uniformly unsupported (EOPNOTSUPP)."""
        if self.stype != SOCK_STREAM:
            raise KernelError(EOPNOTSUPP, f"{op} on SOCK_DGRAM socket")

    # -- data path -------------------------------------------------------

    def send(self, data: bytes) -> int:
        """Queue bytes on the peer's receive buffer."""
        self._require_stream("send")
        if self.state != SocketState.CONNECTED or self.peer is None:
            raise KernelError(ENOTCONN, "send on unconnected socket")
        assert self.peer.endpoint is not None
        self.peer.endpoint.rx.extend(data)
        return len(data)

    def recv(self, count: int) -> bytes:
        """Drain up to ``count`` received bytes."""
        self._require_stream("recv")
        if self.state == SocketState.CLOSED:
            raise KernelError(ENOTCONN, "recv on closed socket")
        if self.endpoint is None:
            raise KernelError(ENOTCONN, "recv on unconnected socket")
        data = bytes(self.endpoint.rx[:count])
        del self.endpoint.rx[:count]
        return data

    def close(self) -> None:
        """Close this endpoint, flagging the peer."""
        if self.peer is not None and self.peer.endpoint is not None:
            self.peer.endpoint.peer_closed = True
        self.state = SocketState.CLOSED


class NetworkStack:
    """The kernel's loopback network."""

    def __init__(self):
        self._listeners: dict[tuple[str, int], Socket] = {}
        self._bound: set[tuple[str, int]] = set()

    def socket(self, family: int, stype: int) -> Socket:
        """Create an unconnected socket."""
        return Socket(family, stype)

    def bind(self, sock: Socket, addr: str, port: int) -> None:
        """Reserve (addr, port) for a socket."""
        sock._require_stream("bind")
        if sock.state not in (SocketState.NEW,):
            raise KernelError(EINVAL, "bind on used socket")
        if (addr, port) in self._bound:
            raise KernelError(EADDRINUSE, f"{addr}:{port}")
        sock.addr = (addr, port)
        sock.state = SocketState.BOUND
        self._bound.add((addr, port))

    def listen(self, sock: Socket, backlog: int) -> None:
        """Start accepting on a bound socket."""
        sock._require_stream("listen")
        if sock.state != SocketState.BOUND or sock.addr is None:
            raise KernelError(EINVAL, "listen on unbound socket")
        sock.state = SocketState.LISTENING
        sock.backlog_limit = max(1, backlog)
        self._listeners[sock.addr] = sock

    def connect(self, sock: Socket, addr: str, port: int) -> None:
        """Queue a connection on a listener's backlog."""
        sock._require_stream("connect")
        if sock.state not in (SocketState.NEW, SocketState.BOUND):
            raise KernelError(EINVAL,
                              f"connect on {sock.state.value} socket")
        listener = self._listeners.get((addr, port))
        if listener is None or listener.state != SocketState.LISTENING:
            raise KernelError(ECONNREFUSED, f"{addr}:{port}")
        if len(listener.backlog) >= listener.backlog_limit:
            raise KernelError(ECONNREFUSED, "backlog full")
        server_side = Socket(sock.family, sock.stype)
        self._pair(sock, server_side)
        listener.backlog.append(server_side)

    def accept(self, listener: Socket) -> Socket:
        """Pop a pending connection."""
        listener._require_stream("accept")
        if listener.state != SocketState.LISTENING:
            raise KernelError(EINVAL, "accept on non-listening socket")
        if not listener.backlog:
            raise KernelError(11, "EAGAIN: no pending connection")
        return listener.backlog.popleft()

    def socketpair(self, family: int = AF_UNIX,
                   stype: int = SOCK_STREAM) -> tuple[Socket, Socket]:
        """Create a connected pair directly."""
        if stype != SOCK_STREAM:
            raise KernelError(EOPNOTSUPP, "socketpair on SOCK_DGRAM")
        left = Socket(family, stype)
        right = Socket(family, stype)
        self._pair(left, right)
        return left, right

    @staticmethod
    def _pair(a: Socket, b: Socket) -> None:
        a.endpoint = Endpoint()
        b.endpoint = Endpoint()
        a.peer, b.peer = b, a
        a.state = b.state = SocketState.CONNECTED

    def unbind(self, sock: Socket) -> None:
        """Release a socket's (addr, port) reservation."""
        if sock.addr is not None:
            self._listeners.pop(sock.addr, None)
            self._bound.discard(sock.addr)
