"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's experiments:

=============  ========================================================
``boot``       boot a Veil CVM and print its configuration + boot cost
``micro``      section 9.1 microbenchmarks (boot / switch / background)
``cs1``        module load/unload overhead under VeilS-KCI
``fig4``       enclave syscall redirection microbenchmarks
``fig5``       shielded real-world program overhead
``fig6``       secure auditing overhead
``attacks``    Tables 1 & 2 + section 8.3 attack suites
``ltp``        LTP-style SDK conformance summary
``lint``       veil-lint trust-boundary static analysis of the tree
``flow``       veil-flow secret-flow + determinism analysis (baseline)
``trace``      run a workload under veil-trace, export a Perfetto trace
``turbo``      software-TLB speedup microbenchmark (veil-turbo)
``warp``       process-parallel fleet speedup benchmark (veil-warp)
``profile``    cProfile a trace workload and print the hotspots
``cluster``    boot a veil-fleet: N attested replicas behind a front end
``chaos``      torture a fleet with a seeded fault schedule (veil-chaos)
``scope``      fleet-wide distributed tracing + latency telemetry
``surge``      open-loop load generation on the event scheduler
``all``        everything above (the full evaluation)
=============  ========================================================
"""

from __future__ import annotations

import argparse
import sys

from .attacks import (run_log_attacks, run_table1, run_table2,
                      run_validation)
from .bench import (render_attack_results, render_background,
                    render_boot, render_cs1, render_fig4, render_fig5,
                    render_fig6, render_switch, run_cs1, run_fig4,
                    run_fig5, run_fig6, run_micro_background,
                    run_micro_boot, run_micro_switch)
from .core import VeilConfig, boot_veil_system
from .hw.cycles import cycles_to_seconds


def _cmd_boot(args) -> None:
    config = VeilConfig(memory_bytes=args.memory_mb * 1024 * 1024,
                        num_cores=args.cores)
    system = boot_veil_system(config)
    print(system.machine.describe())
    print(f"services: {', '.join(sorted(system.veilmon.services))}")
    print(f"protected pages: {len(system.veilmon.protected_ppns)}")
    delta = system.veil_boot_delta
    print(f"Veil boot work: {delta.total:,} cycles "
          f"({cycles_to_seconds(delta.total) * 1000:.1f} simulated ms), "
          f"{100 * delta.category('rmpadjust') / delta.total:.0f}% in "
          "RMPADJUST")
    user = system.attest_and_connect()
    print(f"attestation: OK (measurement "
          f"{system.expected_measurement().hex()[:16]}...)")


def _cmd_micro(args) -> None:
    print(render_boot(run_micro_boot(
        memory_bytes=args.memory_mb * 1024 * 1024, runs=1)))
    print()
    print(render_switch(run_micro_switch(args.switches)))
    print()
    print(render_background(run_micro_background()))


def _cmd_cs1(args) -> None:
    print(render_cs1(run_cs1(repetitions=args.reps)))


def _cmd_fig4(args) -> None:
    rows = run_fig4(iterations=args.iterations)
    if getattr(args, "chart", False):
        from .bench.charts import chart_fig4
        print(chart_fig4(rows))
    else:
        print(render_fig4(rows))


def _cmd_fig5(args) -> None:
    rows = run_fig5()
    if getattr(args, "chart", False):
        from .bench.charts import chart_fig5
        print(chart_fig5(rows))
    else:
        print(render_fig5(rows))


def _cmd_fig6(args) -> None:
    rows = run_fig6()
    if getattr(args, "chart", False):
        from .bench.charts import chart_fig6
        print(chart_fig6(rows))
    else:
        print(render_fig6(rows))


def _cmd_attacks(args) -> None:
    results = (run_table1() + run_table2() + run_log_attacks() +
               run_validation())
    print(render_attack_results(results))
    expected_breaches = [r for r in results
                         if not r.defended and "baseline" in r.defense]
    unexpected = [r for r in results
                  if not r.defended and "baseline" not in r.defense]
    if unexpected:
        print("UNEXPECTED BREACHES:")
        for result in unexpected:
            print(f"  {result}")
        sys.exit(1)


def _cmd_ltp(args) -> None:
    from .workloads.ltp import run_ltp
    system = boot_veil_system(VeilConfig(
        memory_bytes=32 * 1024 * 1024, num_cores=2,
        log_storage_pages=64))
    report = run_ltp(system)
    print(report.summary())
    if args.verbose:
        for name in sorted(report.per_syscall):
            good, bad = report.per_syscall[name]
            print(f"  {name:<20} {good} passed / {bad} failed")


def _lint_argv(args) -> list:
    argv = ["--format", args.format]
    if args.root:
        argv += ["--root", args.root]
    if args.rules:
        argv += ["--rules", args.rules]
    if args.show_suppressed:
        argv.append("--show-suppressed")
    if args.list_rules:
        argv.append("--list-rules")
    if getattr(args, "baseline", None):
        argv += ["--baseline", args.baseline]
    if getattr(args, "no_baseline", False):
        argv.append("--no-baseline")
    return argv


def _cmd_lint(args) -> None:
    from .analysis import cli as analysis_cli
    argv = _lint_argv(args)
    if args.flow:
        argv.append("--flow")
    code = analysis_cli.run(argv)
    if code:
        sys.exit(code)


def _cmd_flow(args) -> None:
    from .analysis import cli as analysis_cli
    code = analysis_cli.run_flow(_lint_argv(args))
    if code:
        sys.exit(code)


def _cmd_trace(args) -> None:
    from .trace import Tracer, render_summary, write_chrome_trace
    from .workloads.trace_demo import run_trace_workload_system
    tracer = Tracer(capacity=args.capacity)
    _tracer, system = run_trace_workload_system(args.workload,
                                               tracer=tracer)
    # Export before publishing the TLB counters: the Chrome trace embeds
    # the metrics registry, and exported traces must stay byte-identical
    # whether the software TLB is on or off (a tested invariant).  The
    # text summary below then gets the counters.
    if args.out:
        write_chrome_trace(tracer, args.out)
    system.machine.publish_tlb_metrics(tracer.metrics)
    print(render_summary(tracer, top=args.top))
    if args.out:
        print(f"\nwrote {tracer.recorded - tracer.dropped} events to "
              f"{args.out} (load in Perfetto / chrome://tracing)")


def _cmd_turbo(args) -> None:
    from .bench.turbo import render_turbo, run_turbo, write_turbo_json
    result = run_turbo(iters=args.iterations, sweeps=args.sweeps,
                       repeats=args.repeats)
    print(render_turbo(result))
    if args.json:
        write_turbo_json(result, args.json)
        print(f"wrote {args.json}")
    if not result.cycles_equal:
        print("FAIL: cycle totals differ between VEIL_TLB modes")
        sys.exit(1)
    if args.min_speedup and result.speedup < args.min_speedup:
        print(f"FAIL: speedup {result.speedup:.2f}x is below the "
              f"--min-speedup floor {args.min_speedup:.2f}x")
        sys.exit(1)


def _cmd_warp(args) -> None:
    from .bench.warp import (render_warp_bench, run_warp_bench,
                             write_warp_json)
    result = run_warp_bench(replicas=args.replicas,
                            requests=args.requests,
                            workers=args.workers,
                            repeats=args.repeats)
    print(render_warp_bench(result))
    if args.json:
        write_warp_json(result, args.json)
        print(f"wrote {args.json}")
    if not result.cycles_equal:
        print("FAIL: cycle ledgers differ between classic and warp "
              "fleets")
        sys.exit(1)
    if args.min_speedup and result.speedup < args.min_speedup:
        print(f"FAIL: speedup {result.speedup:.2f}x is below the "
              f"--min-speedup floor {args.min_speedup:.2f}x")
        sys.exit(1)


def _cmd_profile(args) -> None:
    import cProfile
    import pstats
    from .workloads.trace_demo import run_trace_workload_system
    profiler = cProfile.Profile()
    profiler.enable()
    run_trace_workload_system(args.workload)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)


def _cmd_cluster(args) -> None:
    from .cluster import ClusterConfig, run_cluster
    from .trace import Tracer, write_chrome_trace
    tampered = tuple(int(i) for i in args.tampered.split(",")
                     if i != "") if args.tampered else ()
    tracer = Tracer(capacity=args.capacity)
    result = run_cluster(ClusterConfig(
        replicas=args.replicas, requests=args.requests,
        workload=args.workload, policy=args.policy,
        shielded=args.shielded, tampered=tampered), tracer=tracer)
    print(f"veil-fleet: {args.replicas} replicas, policy {args.policy}, "
          f"workload {args.workload}")
    rule = "-" * 64
    print(rule)
    print(f"{'replica':<10}{'requests':>10}{'handshake':>14}"
          f"{'total cycles':>16}")
    print(rule)
    for row in result.summary_rows():
        print(f"{row['replica']:<10}{row['requests']:>10,}"
              f"{row['handshake_cycles']:>14,}"
              f"{row['total_cycles']:>16,}")
    print(rule)
    for rejected in result.rejected:
        print(f"REJECTED {rejected.replica}: {rejected.reason}")
    print(f"routed {result.requests_routed:,} requests, aggregate "
          f"{result.throughput_rps:,.0f} req/s "
          f"(makespan {cycles_to_seconds(result.makespan_cycles) * 1000:.2f}"
          " simulated ms)")
    print(f"audit: {result.audit.total_entries:,} records pulled from "
          f"{len(result.audit.replicas)} replicas, chains "
          f"{'OK' if result.audit.all_verified else 'MISMATCH'}")
    if args.out:
        write_chrome_trace(tracer, args.out)
        print(f"wrote {tracer.recorded - tracer.dropped} events to "
              f"{args.out} (load in Perfetto / chrome://tracing)")
    if not result.audit.all_verified:
        sys.exit(1)


def _cmd_chaos(args) -> None:
    from .chaos import ChaosConfig, run_chaos_cluster
    config = ChaosConfig(seed=args.seed, profile=args.schedule,
                         replicas=args.replicas, requests=args.requests,
                         workload=args.workload, policy=args.policy)
    result = run_chaos_cluster(config)
    profile = result.profile
    print(f"veil-chaos: schedule {profile.name!r}, seed {args.seed}, "
          f"{args.replicas} replicas, {args.requests} requests")
    rates = (f"drop={profile.drop:.0%} dup={profile.duplicate:.0%} "
             f"delay={profile.delay:.0%} corrupt={profile.corrupt:.0%} "
             f"crash_every={profile.crash_period or '-'} "
             f"spurious_every={profile.spurious_period or '-'}")
    print(f"  faults: {rates}")
    print(f"  completed {result.completed}/{args.requests} requests "
          f"({result.failed} failed, {result.retries} retried "
          "attempts)")
    crashed = ", ".join(f"{name}x{count}"
                        for name, count in result.crashes.items()
                        if count)
    print(f"  crashes: {crashed or 'none'}")
    print(f"  quarantines: {result.quarantines}, re-attestations: "
          f"{result.reattestations}")
    for rejected in result.cluster.rejected:
        print(f"  REJECTED {rejected.replica}: {rejected.reason}")
    print(f"  injected events: {len(result.events)} "
          "(replayable from the seed)")
    inv = result.invariants
    audit = ("chains OK" if inv.audit_verified else
             f"tampering detected ({inv.detection_reason})"
             if inv.tampering_detected else "NOT VERIFIED")
    print(f"  invariants: {inv.messages_scanned} fabric messages "
          f"scanned, no plaintext; audit {audit}")
    if not inv.ok:
        for violation in inv.violations:
            print(f"  VIOLATION: {violation}")
        sys.exit(1)


def _cmd_scope(args) -> None:
    from .bench.scope import (render_scope_bench, run_scope_bench,
                              run_scoped, write_scope_bench_json)
    from .scope import (render_scope_summary, write_merged_trace,
                        write_scope_json)
    if args.bench:
        bench = run_scope_bench(replicas=args.replicas,
                                requests=args.requests,
                                service=args.service, policy=args.policy,
                                repeats=args.repeats)
        print(render_scope_bench(bench))
        if args.bench_json:
            write_scope_bench_json(bench, args.bench_json)
            print(f"wrote {args.bench_json}")
        if not bench.parity_ok:
            print("FAIL: scope on/off parity violated (ledger or trace "
                  "bytes differ)")
            sys.exit(1)
        if args.max_overhead is not None and \
                bench.overhead > args.max_overhead:
            print(f"FAIL: observation overhead {bench.overhead:+.1%} "
                  f"exceeds the --max-overhead cap "
                  f"{args.max_overhead:+.1%}")
            sys.exit(1)
        return
    result, tracer, scope = run_scoped(
        replicas=args.replicas, requests=args.requests,
        schedule=args.schedule, seed=args.seed, service=args.service,
        policy=args.policy, capacity=args.capacity)
    faulted = args.schedule != "none"
    print(f"veil-scope: {args.workload} workload, {args.replicas} "
          f"replicas, {args.requests} requests, schedule "
          f"{args.schedule!r}" + (f", seed {args.seed}" if faulted
                                  else ""))
    print()
    print(render_scope_summary(scope))
    if args.json:
        write_scope_json(scope, args.json)
        print(f"\nwrote metrics snapshot to {args.json}")
    if args.out:
        from .scope import merged_chrome_trace
        doc = merged_chrome_trace(tracer, scope)
        write_merged_trace(tracer, scope, args.out)
        print(f"wrote {len(doc['traceEvents'])} merged fleet events to "
              f"{args.out} (load in Perfetto / chrome://tracing)")
    if faulted and not result.invariants.ok:
        for violation in result.invariants.violations:
            print(f"VIOLATION: {violation}")
        sys.exit(1)


def _cmd_surge(args) -> None:
    import json as _json
    from .bench.surge import (render_surge_bench, run_surge_bench,
                              smoke_summary, write_surge_json)
    from .hw.cycles import CLOCK_HZ
    from .surge import SurgeConfig, run_surge
    if args.smoke:
        summary = smoke_summary(seed=args.seed)
        print(_json.dumps(summary, indent=2, sort_keys=True))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(summary, fh, indent=2, sort_keys=True)
                fh.write("\n")
        return
    if args.knee:
        bench = run_surge_bench(seed=args.seed, replicas=args.replicas,
                                requests=args.requests)
        print(render_surge_bench(bench))
        if args.json:
            write_surge_json(bench, args.json)
            print(f"wrote {args.json}")
        if not bench.replay_ok:
            print("FAIL: same-seed smoke runs produced different "
                  "summaries")
            sys.exit(1)
        if args.min_inflight and \
                bench.flagship["max_in_flight"] < args.min_inflight:
            print(f"FAIL: flagship peak in-flight "
                  f"{bench.flagship['max_in_flight']} is below the "
                  f"--min-inflight floor {args.min_inflight}")
            sys.exit(1)
        return
    result = run_surge(SurgeConfig(
        seed=args.seed, arrivals=args.arrivals, replicas=args.replicas,
        requests=args.requests, load=args.load, workload=args.workload,
        policy=args.policy, admit_limit=args.admit_limit,
        min_active=args.min_active))
    cfg = result.config
    print(f"veil-surge: {cfg.arrivals} arrivals, load {cfg.load}, "
          f"{cfg.replicas} replicas x {cfg.concurrency} slots, seed "
          f"{cfg.seed}")
    print(f"  requests: {result.completed:,} completed, "
          f"{result.shed:,} shed, {result.failed:,} failed of "
          f"{result.requests:,} offered")
    print(f"  concurrency: max {result.max_in_flight:,} in flight, "
          f"peak queue depth {result.peak_queue_depth:,}")
    if result.scale_events:
        ups = sum(1 for e in result.scale_events if e[1] == "up")
        print(f"  autoscaler: {ups} scale-ups, "
              f"{len(result.scale_events) - ups} scale-downs, high "
              f"water {result.active_high_water} active")
    makespan_ms = result.makespan_cycles / CLOCK_HZ * 1000
    print(f"  throughput: {result.throughput_rps:,.0f} req/s achieved "
          f"vs {result.offered_rps:,.0f} req/s offered "
          f"(makespan {makespan_ms:.2f} simulated ms)")
    for klass in sorted(result.latency):
        pct = result.latency[klass]
        print(f"  {klass:<8} p50={pct['p50']:,} p95={pct['p95']:,} "
              f"p99={pct['p99']:,} cycles")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(result.summary_dict(), fh, indent=2,
                       sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    if args.min_inflight and result.max_in_flight < args.min_inflight:
        print(f"FAIL: peak in-flight {result.max_in_flight} is below "
              f"the --min-inflight floor {args.min_inflight}")
        sys.exit(1)


def _cmd_ablations(args) -> None:
    from .bench.ablations import (render_ablations,
                                  run_batching_ablation,
                                  run_boot_scaling, run_flush_ablation,
                                  run_payload_sweep,
                                  run_vsgx_comparison)
    print(render_ablations(
        run_batching_ablation(), run_flush_ablation(),
        run_vsgx_comparison(),
        run_boot_scaling(sizes_mb=(256, 512)),
        run_payload_sweep()))


def _cmd_export(args) -> None:
    from .bench.export import export_all
    written = export_all(args.out)
    for name, path in sorted(written.items()):
        print(f"{name:<18} -> {path}")


def _cmd_all(args) -> None:
    for fn in (_cmd_micro, _cmd_cs1, _cmd_fig4, _cmd_fig5, _cmd_fig6,
               _cmd_attacks, _cmd_ltp):
        fn(args)
        print()


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Veil (ASPLOS'23) reproduction experiment runner")
    sub = parser.add_subparsers(dest="command", required=True)

    boot = sub.add_parser("boot", help="boot a Veil CVM")
    boot.add_argument("--memory-mb", type=int, default=64)
    boot.add_argument("--cores", type=int, default=2)
    boot.set_defaults(fn=_cmd_boot)

    micro = sub.add_parser("micro", help="section 9.1 microbenchmarks")
    micro.add_argument("--memory-mb", type=int, default=2048)
    micro.add_argument("--switches", type=int, default=5000)
    micro.set_defaults(fn=_cmd_micro)

    cs1 = sub.add_parser("cs1", help="module load/unload overhead")
    cs1.add_argument("--reps", type=int, default=100)
    cs1.set_defaults(fn=_cmd_cs1)

    fig4 = sub.add_parser("fig4", help="enclave syscall microbenchmarks")
    fig4.add_argument("--iterations", type=int, default=30)
    fig4.add_argument("--chart", action="store_true",
                      help="draw an ASCII bar chart instead of a table")
    fig4.set_defaults(fn=_cmd_fig4)

    fig5 = sub.add_parser("fig5", help="shielded program overhead")
    fig5.add_argument("--chart", action="store_true")
    fig5.set_defaults(fn=_cmd_fig5)
    fig6 = sub.add_parser("fig6", help="audit overhead")
    fig6.add_argument("--chart", action="store_true")
    fig6.set_defaults(fn=_cmd_fig6)
    sub.add_parser("attacks",
                   help="security validation suites").set_defaults(
        fn=_cmd_attacks)

    ltp = sub.add_parser("ltp", help="SDK conformance summary")
    ltp.add_argument("--verbose", action="store_true")
    ltp.set_defaults(fn=_cmd_ltp)

    lint = sub.add_parser("lint",
                          help="veil-lint trust-boundary analysis")
    lint.add_argument("--root", default=None)
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text")
    lint.add_argument("--rules", default=None)
    lint.add_argument("--show-suppressed", action="store_true")
    lint.add_argument("--list-rules", action="store_true")
    lint.add_argument("--flow", action="store_true",
                      help="also run the interprocedural flow rules")
    lint.add_argument("--baseline", default=None)
    lint.add_argument("--no-baseline", action="store_true")
    lint.set_defaults(fn=_cmd_lint)

    flow = sub.add_parser(
        "flow", help="veil-flow secret-flow + determinism analysis")
    flow.add_argument("--root", default=None)
    flow.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text")
    flow.add_argument("--rules", default=None)
    flow.add_argument("--show-suppressed", action="store_true")
    flow.add_argument("--list-rules", action="store_true")
    flow.add_argument("--baseline", default=None)
    flow.add_argument("--no-baseline", action="store_true")
    flow.set_defaults(fn=_cmd_flow)

    trace = sub.add_parser(
        "trace", help="run a workload under veil-trace")
    from .workloads.trace_demo import TRACE_WORKLOADS
    trace.add_argument("workload", choices=sorted(TRACE_WORKLOADS),
                       help="which demo workload to trace")
    trace.add_argument("--out", default=None,
                       help="write a Chrome trace-event JSON file")
    trace.add_argument("--capacity", type=int, default=65536,
                       help="tracer ring-buffer capacity (events)")
    trace.add_argument("--top", type=int, default=10,
                       help="span kinds to show in the summary table")
    trace.set_defaults(fn=_cmd_trace)

    turbo = sub.add_parser(
        "turbo", help="software-TLB speedup microbenchmark")
    turbo.add_argument("--iterations", type=int, default=4,
                       help="syscall-redirection iterations")
    turbo.add_argument("--sweeps", type=int, default=300,
                       help="buffer peek sweeps per iteration")
    turbo.add_argument("--repeats", type=int, default=3,
                       help="timed runs per mode (best is reported)")
    turbo.add_argument("--json", default=None,
                       help="write a BENCH_turbo.json artifact")
    turbo.add_argument("--min-speedup", type=float, default=0.0,
                       help="exit non-zero if speedup falls below this")
    turbo.set_defaults(fn=_cmd_turbo)

    warp = sub.add_parser(
        "warp", help="process-parallel fleet speedup benchmark")
    warp.add_argument("--replicas", type=int, default=8,
                      help="fleet size (default 8)")
    warp.add_argument("--requests", type=int, default=100,
                      help="closed-loop requests to drive (default 100)")
    warp.add_argument("--workers", type=int, default=None,
                      help="worker processes (default: one per CPU up "
                      "to one per replica; 0 = inline, no fork)")
    warp.add_argument("--repeats", type=int, default=2,
                      help="timed laps per mode; best is kept")
    warp.add_argument("--json", default=None,
                      help="write a BENCH_warp.json artifact")
    warp.add_argument("--min-speedup", type=float, default=0.0,
                      help="fail unless speedup reaches this floor")
    warp.set_defaults(fn=_cmd_warp)

    profile = sub.add_parser(
        "profile", help="cProfile a trace workload, print hotspots")
    profile.add_argument("workload", choices=sorted(TRACE_WORKLOADS),
                         help="which demo workload to profile")
    profile.add_argument("--sort", default="cumulative",
                         choices=("cumulative", "tottime", "calls"),
                         help="pstats sort order")
    profile.add_argument("--top", type=int, default=25,
                         help="number of hotspot rows to print")
    profile.set_defaults(fn=_cmd_profile)

    cluster = sub.add_parser(
        "cluster", help="boot an attested multi-CVM fleet")
    cluster.add_argument("--replicas", type=int, default=2,
                         help="fleet size (independent Veil CVMs)")
    cluster.add_argument("--requests", type=int, default=200,
                         help="closed-loop requests through the front end")
    cluster.add_argument("--policy", default="least-outstanding",
                         choices=("round-robin", "least-outstanding",
                                  "consistent-hash"))
    cluster.add_argument("--workload", default="memcached",
                         choices=("memcached", "sqlite"))
    cluster.add_argument("--shielded", action="store_true",
                         help="host replica handlers inside VeilS-ENC "
                              "enclaves")
    cluster.add_argument("--tampered", default="",
                         help="comma-separated replica indices booted "
                              "from a tampered image")
    cluster.add_argument("--out", default=None,
                         help="write a Chrome trace-event JSON file")
    cluster.add_argument("--capacity", type=int, default=65536,
                         help="tracer ring-buffer capacity (events)")
    cluster.set_defaults(fn=_cmd_cluster)

    chaos = sub.add_parser(
        "chaos", help="fault-inject a fleet and check invariants")
    from .chaos.plan import PROFILES
    chaos.add_argument("--seed", type=int, default=1,
                       help="fault-schedule seed (replayable)")
    chaos.add_argument("--schedule", default="mayhem",
                       choices=sorted(PROFILES),
                       help="named fault profile to inject")
    chaos.add_argument("--replicas", type=int, default=3)
    chaos.add_argument("--requests", type=int, default=48)
    chaos.add_argument("--policy", default="least-outstanding",
                       choices=("round-robin", "least-outstanding",
                                "consistent-hash"))
    chaos.add_argument("--workload", default="memcached",
                       choices=("memcached", "sqlite"))
    chaos.set_defaults(fn=_cmd_chaos)

    scope = sub.add_parser(
        "scope", help="fleet-wide tracing + latency telemetry")
    from .bench.scope import SCHEDULES
    scope.add_argument("workload", choices=("cluster", "chaos"),
                       help="fleet scenario to observe (both run the "
                            "attested fleet; the schedule decides "
                            "whether faults are injected)")
    scope.add_argument("--replicas", type=int, default=4,
                       help="fleet size (independent Veil CVMs)")
    scope.add_argument("--requests", type=int, default=48,
                       help="closed-loop requests through the front end")
    scope.add_argument("--schedule", default="mayhem",
                       choices=SCHEDULES,
                       help="fault schedule to inject ('none' for a "
                            "clean fleet)")
    scope.add_argument("--seed", type=int, default=1,
                       help="fault-schedule seed (replayable)")
    scope.add_argument("--policy", default="least-outstanding",
                       choices=("round-robin", "least-outstanding",
                                "consistent-hash"))
    scope.add_argument("--service", default="memcached",
                       choices=("memcached", "sqlite"),
                       help="service each replica hosts")
    scope.add_argument("--capacity", type=int, default=65536,
                       help="tracer ring-buffer capacity (events)")
    scope.add_argument("--out", default=None,
                       help="write the merged fleet Chrome trace here")
    scope.add_argument("--json", default=None,
                       help="write the telemetry/metrics snapshot here")
    scope.add_argument("--bench", action="store_true",
                       help="measure scope-off vs scope-on overhead "
                            "and check the parity contract")
    scope.add_argument("--repeats", type=int, default=2,
                       help="timed runs per bench mode (best reported)")
    scope.add_argument("--max-overhead", type=float, default=None,
                       help="with --bench: exit non-zero if overhead "
                            "exceeds this fraction (e.g. 0.15)")
    scope.add_argument("--bench-json", default=None,
                       help="with --bench: write a BENCH_scope.json "
                            "artifact")
    scope.set_defaults(fn=_cmd_scope)

    surge = sub.add_parser(
        "surge", help="open-loop load generation (event scheduler)")
    from .surge import ARRIVALS
    surge.add_argument("--seed", type=int, default=1,
                       help="arrival-plan seed (replayable)")
    surge.add_argument("--arrivals", default="poisson",
                       choices=sorted(ARRIVALS),
                       help="arrival shape (traffic class)")
    surge.add_argument("--replicas", type=int, default=8,
                       help="fleet size (independent Veil CVMs)")
    surge.add_argument("--requests", type=int, default=2000,
                       help="open-loop arrivals to schedule")
    surge.add_argument("--load", type=float, default=2.0,
                       help="offered load as a multiple of estimated "
                            "fleet capacity")
    surge.add_argument("--workload", default="memcached",
                       choices=("memcached", "sqlite"))
    surge.add_argument("--policy", default="least-outstanding",
                       choices=("round-robin", "least-outstanding",
                                "consistent-hash"))
    surge.add_argument("--admit-limit", type=int, default=0,
                       help="in-flight admission cap (0 = unlimited)")
    surge.add_argument("--min-active", type=int, default=0,
                       help="warm-pool floor enabling the autoscaler "
                            "(0 = all replicas active, no scaling)")
    surge.add_argument("--json", default=None,
                       help="write the run summary (or --knee bench) "
                            "JSON here")
    surge.add_argument("--min-inflight", type=int, default=0,
                       help="exit non-zero unless peak in-flight "
                            "reaches this floor")
    surge.add_argument("--smoke", action="store_true",
                       help="small fixed-size seeded run; prints the "
                            "deterministic summary JSON (CI "
                            "byte-compares two of these)")
    surge.add_argument("--knee", action="store_true",
                       help="sweep load factors per arrival class and "
                            "write the BENCH_surge.json artifact")
    surge.set_defaults(fn=_cmd_surge)

    export = sub.add_parser("export",
                            help="dump all results as JSON/CSV")
    export.add_argument("--out", default="results")
    export.set_defaults(fn=_cmd_export)

    sub.add_parser("ablations",
                   help="design-choice ablation experiments"
                   ).set_defaults(fn=_cmd_ablations)

    everything = sub.add_parser("all", help="the full evaluation")
    everything.add_argument("--memory-mb", type=int, default=2048)
    everything.add_argument("--switches", type=int, default=5000)
    everything.add_argument("--reps", type=int, default=50)
    everything.add_argument("--iterations", type=int, default=30)
    everything.add_argument("--verbose", action="store_true")
    everything.set_defaults(fn=_cmd_all)
    return parser


def main(argv=None) -> None:
    """CLI entry point: parse arguments and run the command."""
    args = build_parser().parse_args(argv)
    args.fn(args)


if __name__ == "__main__":
    main()
