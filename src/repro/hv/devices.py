"""Host-side virtio-style devices exposed to the CVM.

The CVM reaches devices only through GHCB-mediated exits (the hypervisor
services ``io`` requests).  Devices are deliberately untrusted: tests can
tamper with their contents to model malicious-host behaviour, and nothing
security-critical may depend on them.
"""

from __future__ import annotations

from ..errors import KernelError

SECTOR_SIZE = 512


class VirtioConsole:
    """Append-only console sink (used by ``printf``-style syscalls)."""

    def __init__(self):
        self.lines: list[str] = []
        self._partial = ""

    def write(self, data: bytes) -> int:
        """Append bytes, splitting complete lines."""
        text = self._partial + data.decode("utf-8", errors="replace")
        *complete, self._partial = text.split("\n")
        self.lines.extend(complete)
        return len(data)

    def flush(self) -> None:
        """Emit any trailing partial line."""
        if self._partial:
            self.lines.append(self._partial)
            self._partial = ""

    @property
    def output(self) -> str:
        return "\n".join(self.lines + ([self._partial] if self._partial
                                       else []))


class VirtioBlock:
    """A sector-addressed block device backing the guest's disk."""

    def __init__(self, capacity_sectors: int = 16384):
        self.capacity_sectors = capacity_sectors
        self._sectors: dict[int, bytes] = {}
        self.reads = 0
        self.writes = 0

    def read_sector(self, lba: int) -> bytes:
        """Read one 512-byte sector."""
        self._check(lba)
        self.reads += 1
        return self._sectors.get(lba, b"\x00" * SECTOR_SIZE)

    def write_sector(self, lba: int, data: bytes) -> None:
        """Write one 512-byte sector."""
        self._check(lba)
        if len(data) != SECTOR_SIZE:
            raise KernelError(22, "short sector write")
        self.writes += 1
        self._sectors[lba] = bytes(data)

    def _check(self, lba: int) -> None:
        if not 0 <= lba < self.capacity_sectors:
            raise KernelError(5, f"lba {lba} out of range")
