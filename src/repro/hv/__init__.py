"""Untrusted host software: hypervisor, PSP attestation, virtio devices."""

from .attestation import (AttestationReport, RemoteUser, SecureProcessor,
                          platform_signing_key)
from .devices import SECTOR_SIZE, VirtioBlock, VirtioConsole
from .hypervisor import GhcbPolicy, HostAccessBlocked, Hypervisor

__all__ = [
    "AttestationReport", "RemoteUser", "SecureProcessor",
    "platform_signing_key", "SECTOR_SIZE", "VirtioBlock", "VirtioConsole",
    "GhcbPolicy", "HostAccessBlocked", "Hypervisor",
]
