"""The untrusted KVM-like hypervisor.

Implements the three host-side changes the paper makes to KVM (section 7):

1. maintain VMSAs for newly-created domains (a per-VCPU registry keyed by
   VMPL, the analog of the ``struct vcpu_svm`` change);
2. hypercall handling for domain switches (with the per-GHCB switch policy
   from section 6.2 -- user-mapped GHCBs may only switch DomUNT <-> DomENC);
3. relaying automatic interrupt exits taken during enclave execution to
   DomUNT.

The hypervisor is *untrusted*: it also exposes attack knobs (refusing the
interrupt relay, attempting VMSA tampering through host memory access) used
by the section 8 experiments.  Host access to guest memory goes through
:meth:`host_read` / :meth:`host_write`, which enforce the SEV-SNP rule that
assigned guest pages are inaccessible from outside.
"""

from __future__ import annotations

import typing
from collections import deque
from dataclasses import dataclass, field

from ..errors import NestedPageFault, SecurityViolation, \
    SimulationError
from ..hw.ghcb import Ghcb
from ..hw.memory import page_base
from ..hw.pagetable import PageFault
from ..hw.rmp import VMPL_ENC, VMPL_MON, VMPL_UNT, vmpl_name
from ..hw.vmsa import Vmsa
from .attestation import SecureProcessor
from .devices import VirtioBlock, VirtioConsole

if typing.TYPE_CHECKING:
    from ..hw.platform import SevSnpMachine
    from ..hw.vcpu import VirtualCpu


class HostAccessBlocked(SecurityViolation):
    """SEV-SNP blocked a host-side access to assigned guest memory."""


#: Exit-log retention.  512 entries comfortably covers every "recent
#: exits" assertion in the test/attack suites while bounding memory on
#: multi-thousand-switch benchmark runs.
EXIT_LOG_CAPACITY = 512


class ExitLog:
    """Bounded record of recent exits (compat shim over a ring buffer).

    Historically ``Hypervisor.exit_log`` was a plain list that grew one
    string per exit forever.  It is now a fixed-capacity ring: the most
    recent :data:`EXIT_LOG_CAPACITY` entries support the same ``in`` /
    iteration / indexing idioms tests use, while :attr:`total` keeps the
    all-time count.  Full-fidelity exit history lives in the machine's
    tracer, not here.
    """

    def __init__(self, capacity: int = EXIT_LOG_CAPACITY):
        self._ring: deque[str] = deque(maxlen=capacity)
        self.total = 0

    def append(self, entry: str) -> None:
        """Record one exit (evicting the oldest once at capacity)."""
        self._ring.append(entry)
        self.total += 1

    def recent(self, n: int | None = None) -> list[str]:
        """The last ``n`` retained entries (all retained if ``None``)."""
        entries = list(self._ring)
        return entries if n is None else entries[-n:]

    def clear(self) -> None:
        """Drop the buffered tail (``total`` keeps counting)."""
        self._ring.clear()

    def __contains__(self, entry: str) -> bool:
        return entry in self._ring

    def __iter__(self):
        return iter(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._ring)[index]
        return self._ring[index]


@dataclass
class GhcbPolicy:
    """Per-GHCB switch policy installed at registration time."""

    vcpu_id: int
    #: Allowed (from_vmpl, to_vmpl) transitions via this GHCB.
    allowed_switches: set = field(default_factory=set)


class Hypervisor:
    """Host VMM servicing one confidential VM."""

    def __init__(self, machine: "SevSnpMachine",
                 psp: SecureProcessor | None = None):
        self.machine = machine
        machine.hypervisor = self
        self.psp = psp or SecureProcessor()
        self.console = VirtioConsole()
        self.block = VirtioBlock()
        #: (vcpu_id, vmpl) -> VMSA.  The "struct vcpu_svm" extension.
        self.vmsas: dict[tuple[int, int], Vmsa] = {}
        #: ghcb ppn -> policy, for GHCBs registered for domain switching.
        self.ghcb_policies: dict[int, GhcbPolicy] = {}
        #: VMPL that receives relayed interrupts during enclave execution.
        self.interrupt_relay_vmpl = VMPL_UNT
        #: Called (core) after an interrupt is relayed to DomUNT so the
        #: guest kernel model can account handler work before the enclave
        #: is resumed.  Installed by the kernel at boot.
        self.interrupt_return_hook = None
        # ---- attack knobs (section 8) -------------------------------------
        self.refuse_interrupt_relay = False
        #: Byzantine-hypervisor knob (veil-chaos): corrupt the next N
        #: attestation-report replies written back through the GHCB.
        #: The PSP signature no longer verifies, so the relying party
        #: detects the tampering and refuses the handshake.
        self.corrupt_ghcb_replies = 0
        #: Attestation replies corrupted so far (detection accounting).
        self.ghcb_replies_corrupted = 0
        self.exit_log = ExitLog()

    # ------------------------------------------------------------------
    # Launch
    # ------------------------------------------------------------------

    def launch(self, boot_image: bytes, *, boot_vcpu_id: int = 0) -> Vmsa:
        """Measure the boot image and create the boot VCPU at VMPL-0.

        Returns the boot VMSA; the caller (the boot code model) enters it
        on core 0.  Per the paper, the boot VCPU instance is the only one
        the hypervisor creates, and it is always VMPL-0.
        """
        self.psp.measure_launch(boot_image)
        vmsa = self._materialize_vmsa(vcpu_id=boot_vcpu_id,
                                      vmpl=VMPL_MON)
        self.vmsas[(boot_vcpu_id, VMPL_MON)] = vmsa
        return vmsa

    def _materialize_vmsa(self, *, vcpu_id: int, vmpl: int) -> Vmsa:
        ppn = self.machine.frames.alloc("vmsa")
        self.machine.rmp.install_vmsa(ppn)
        vmsa = Vmsa(vcpu_id=vcpu_id, vmpl=vmpl, ppn=ppn)
        self.machine.vmsa_objects[ppn] = vmsa
        return vmsa

    # ------------------------------------------------------------------
    # Host-side memory access (SEV-SNP enforcement)
    # ------------------------------------------------------------------

    def host_read(self, paddr: int, length: int) -> bytes:
        """Read guest physical memory from the host side."""
        self._host_check(paddr, length, "read")
        return self.machine.memory.read(paddr, length)

    def host_write(self, paddr: int, data: bytes) -> None:
        """Write guest physical memory from the host side."""
        self._host_check(paddr, len(data), "write")
        self.machine.memory.write(paddr, data)

    def _host_check(self, paddr: int, length: int, what: str) -> None:
        from ..hw.memory import pages_spanned
        for ppn in pages_spanned(paddr, length):
            ent = self.machine.rmp.peek(ppn)
            if ent.shared:
                continue
            if ent.assigned or ent.vmsa:
                raise HostAccessBlocked(
                    f"host {what} of assigned guest page {ppn:#x} blocked "
                    "by SEV-SNP")

    # ------------------------------------------------------------------
    # VMGEXIT dispatch
    # ------------------------------------------------------------------

    def handle_vmgexit(self, core: "VirtualCpu") -> None:
        """Service a non-automatic exit.  ``core`` has already hw_exit()ed."""
        exited = core.instance
        if exited is None:
            raise SimulationError("vmgexit with no exited instance")
        ghcb_gpa = exited.regs.ghcb_msr
        if ghcb_gpa == 0:
            self.machine.halt("VMGEXIT with no GHCB published")
        ghcb = Ghcb(ghcb_gpa >> 12)
        message = ghcb.read_message(self.machine.memory)
        op = message.get("op")
        self.exit_log.append(f"vmgexit:{op}")
        self.machine.tracer.metrics.count("vmgexit", str(op))
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            self.machine.halt(f"unknown VMGEXIT op {op!r}")
        handler(core, exited, ghcb, message)

    def trace_span(self, core: "VirtualCpu", exited: Vmsa, name: str,
                   **args):
        """Open an ``hv``-category span attributed to the exited domain.

        Every ``_op_*`` handler opens one of these (enforced by
        veil-lint's ``trace-span`` rule), so hypervisor-side servicing of
        each exit is visible per-operation in exported traces.
        """
        return self.machine.tracer.span(
            "hv", name, vcpu=core.cpu_index, vmpl=exited.vmpl,
            args=args or None)

    def _enter(self, core: "VirtualCpu", vmsa: Vmsa) -> None:
        """VMENTER ``core`` on ``vmsa`` (charges the enter half-cost)."""
        self.machine.ledger.charge("domain_switch", self.machine.cost.vmenter)
        core.hw_enter(vmsa)

    def _resume_same(self, core: "VirtualCpu", exited: Vmsa) -> None:
        self._enter(core, exited)

    # -- operations -------------------------------------------------------

    def _op_domain_switch(self, core, exited: Vmsa, ghcb: Ghcb,
                          message: dict) -> None:
        target_vmpl = int(message["target_vmpl"])
        with self.trace_span(core, exited, "op:domain_switch",
                             target_vmpl=target_vmpl):
            policy = self.ghcb_policies.get(ghcb.ppn)
            if policy is None:
                self.machine.halt(
                    f"domain switch via unregistered GHCB {ghcb.ppn:#x}")
            pair = (exited.vmpl, target_vmpl)
            if pair not in policy.allowed_switches:
                # Paper section 6.2: errant hypercalls crash the CVM.
                self.machine.halt(
                    f"GHCB {ghcb.ppn:#x} does not permit switch "
                    f"VMPL-{pair[0]} -> VMPL-{pair[1]}")
            target = self.vmsas.get((exited.vcpu_id, target_vmpl))
            if target is None:
                self.machine.halt(
                    f"no VMSA for vcpu {exited.vcpu_id} at "
                    f"VMPL-{target_vmpl}")
            self.machine.tracer.metrics.count(
                "switch",
                f"{vmpl_name(exited.vmpl)}->{vmpl_name(target_vmpl)}")
            self._enter(core, target)

    def _op_register_vmsa(self, core, exited: Vmsa, ghcb: Ghcb,
                          message: dict) -> None:
        """Guest VMPL-0 software created a VMSA; record it (KVM change #1).

        The hardware analog of the check below is that VMENTER validates
        the target page really is an RMP-marked VMSA page; a forged
        registration therefore cannot produce a runnable instance.
        """
        ppn = int(message["vmsa_ppn"])
        with self.trace_span(core, exited, "op:register_vmsa", ppn=ppn):
            ent = self.machine.rmp.peek(ppn)
            vmsa = self.machine.vmsa_objects.get(ppn)
            if vmsa is None or not ent.vmsa:
                self.machine.halt(
                    f"register_vmsa on non-VMSA page {ppn:#x}")
            self.vmsas[(vmsa.vcpu_id, vmsa.vmpl)] = vmsa
            self._resume_same(core, exited)

    def _op_start_vcpu(self, core, exited: Vmsa, ghcb: Ghcb,
                       message: dict) -> None:
        """AP boot / hotplug: start a core on a registered VMSA."""
        vcpu_id = int(message["vcpu_id"])
        vmpl = int(message.get("vmpl", VMPL_UNT))
        with self.trace_span(core, exited, "op:start_vcpu",
                             target_vcpu=vcpu_id, target_vmpl=vmpl):
            target = self.vmsas.get((vcpu_id, vmpl))
            if target is None:
                self.machine.halt(f"start_vcpu: no VMSA for vcpu "
                                  f"{vcpu_id} at VMPL-{vmpl}")
            if vcpu_id >= len(self.machine.cores):
                self.machine.halt(
                    f"start_vcpu: no physical core {vcpu_id}")
            self._enter(self.machine.cores[vcpu_id], target)
            self._resume_same(core, exited)

    def _op_page_state_change(self, core, exited: Vmsa, ghcb: Ghcb,
                              message: dict) -> None:
        """Guest asks to convert pages private<->shared (KVM assists)."""
        action = message["action"]
        with self.trace_span(core, exited, "op:page_state_change",
                             action=str(action),
                             pages=len(message["ppns"])):
            for ppn in message["ppns"]:
                if action == "share":
                    self.machine.rmp.share(int(ppn))
                elif action == "private":
                    self.machine.rmp.assign(int(ppn))
                else:
                    self.machine.halt(f"bad page_state_change {action!r}")
            self._resume_same(core, exited)

    def _op_io(self, core, exited: Vmsa, ghcb: Ghcb, message: dict) -> None:
        """Device I/O: console writes and block-device sector access."""
        device = message["device"]
        reply: dict = {"status": "ok"}
        with self.trace_span(core, exited, "op:io", device=str(device)):
            if device == "console":
                data = bytes.fromhex(message["data_hex"])
                reply["written"] = self.console.write(data)
            elif device == "block":
                lba = int(message["lba"])
                if message["action"] == "read":
                    reply["data_hex"] = self.block.read_sector(lba).hex()
                else:
                    self.block.write_sector(
                        lba, bytes.fromhex(message["data_hex"]))
            else:
                self.machine.halt(f"io to unknown device {device!r}")
            ghcb.write_message(self.machine.memory, reply)
            self._resume_same(core, exited)

    def _op_attestation_report(self, core, exited: Vmsa, ghcb: Ghcb,
                               message: dict) -> None:
        """Forward an attestation request to the PSP.

        The PSP stamps the *requesting VMPL* from the hardware context --
        the hypervisor cannot lie about it.
        """
        with self.trace_span(core, exited, "op:attestation_report"):
            report = self.psp.attestation_report(
                requester_vmpl=exited.vmpl,
                report_data=bytes.fromhex(message["report_data_hex"]))
            signature = report.signature
            if self.corrupt_ghcb_replies > 0:
                # Byzantine mode: the untrusted VMM flips a bit in the
                # PSP's signature on the way back through shared memory.
                # It cannot forge a valid one, so verification fails at
                # the relying party -- tampering is detected, never
                # silently trusted.
                self.corrupt_ghcb_replies -= 1
                self.ghcb_replies_corrupted += 1
                signature = bytes([signature[0] ^ 0x01]) + signature[1:]
                self.machine.tracer.metrics.count("ghcb_corrupted",
                                                  "attestation_report")
            ghcb.write_message(self.machine.memory, {
                "status": "ok",
                "measurement_hex": report.measurement.hex(),
                "requester_vmpl": report.requester_vmpl,
                "report_data_hex": report.report_data.hex(),
                "signature_hex": signature.hex(),
            })
            self._resume_same(core, exited)

    def _op_halt(self, core, exited: Vmsa, ghcb: Ghcb,
                 message: dict) -> None:
        with self.trace_span(core, exited, "op:halt"):
            self.machine.halt(
                message.get("reason", "guest requested halt"))

    # ------------------------------------------------------------------
    # Automatic exits (interrupts)
    # ------------------------------------------------------------------

    def handle_automatic_exit(self, core: "VirtualCpu",
                              reason: str) -> None:
        """Service an automatic exit (e.g. timer interrupt).

        For exits taken while an enclave (VMPL-2) was running, the Veil
        patch relays the interrupt to DomUNT (KVM change #3); the guest
        kernel handles it and the enclave instance is resumed.  A malicious
        hypervisor may refuse the relay and force the interrupt into the
        enclave context -- which halts the CVM with #NPF because the OS
        interrupt handler is unreachable there (section 8.2).
        """
        exited = core.instance
        if exited is None:
            raise SimulationError("automatic exit with no instance")
        self.exit_log.append(f"auto:{reason}:vmpl{exited.vmpl}")
        self.machine.tracer.metrics.count("auto_exit", reason)
        with self.trace_span(core, exited, f"auto:{reason}"):
            if exited.vmpl != VMPL_ENC:
                # Kernel/monitor context: re-enter and let the guest
                # handle it.
                self._enter(core, exited)
                return
            if self.refuse_interrupt_relay:
                self._force_interrupt_into_enclave(core, exited)
                return
            target = self.vmsas.get(
                (exited.vcpu_id, self.interrupt_relay_vmpl))
            if target is None:
                self.machine.halt(
                    "no DomUNT instance to relay interrupt to")
            self._enter(core, target)
            if self.interrupt_return_hook is not None:
                self.interrupt_return_hook(core)
            # Kernel done; world-switch back into the enclave instance.
            self.machine.ledger.charge("domain_switch",
                                       self.machine.cost.vmgexit)
            core.hw_exit()
            self._enter(core, exited)

    def inject_spurious_exit(self, core: "VirtualCpu") -> None:
        """Byzantine-hypervisor knob: force a gratuitous exit/resume.

        A malicious VMM can always bounce a running instance through an
        exit it invented -- it costs the guest a world-switch round trip
        (charged to the ``domain_switch`` ledger category like any other
        exit) but reveals nothing and corrupts nothing: the VMSA is
        integrity-protected, so the instance resumes exactly where it
        was.  No-op if the core has no running instance.
        """
        exited = core.instance
        if exited is None:
            return
        self.exit_log.append(f"auto:spurious:vmpl{exited.vmpl}")
        self.machine.tracer.metrics.count("auto_exit", "spurious")
        with self.trace_span(core, exited, "auto:spurious"):
            self.machine.ledger.charge("domain_switch",
                                       self.machine.cost.vmgexit)
            core.hw_exit()
            self._enter(core, exited)

    def _force_interrupt_into_enclave(self, core, enc_vmsa: Vmsa) -> None:
        """Attack path: deliver the interrupt in the enclave context.

        The enclave's page tables do not map the kernel's handler, and the
        enclave VMPL has no SEXEC rights on kernel text, so the delivery
        faults and the CVM halts -- the defence row "Refuse interrupt
        relay -> CVM halts with #NPF" of Table 2.
        """
        self._enter(core, enc_vmsa)
        handler = self.machine.idt_handler_vaddr
        saved_cpl = core.regs.cpl
        core.regs.cpl = 0
        try:
            core.fetch(handler)
        except (PageFault, NestedPageFault) as fault:
            core.regs.cpl = saved_cpl
            self.machine.halt(
                "interrupt forced into enclave context: handler "
                f"unreachable ({fault})", cause=fault)
        core.regs.cpl = saved_cpl
        self.machine.halt(
            "interrupt forced into enclave context unexpectedly succeeded")
