"""SEV-SNP launch measurement and remote attestation.

The AMD secure processor (PSP) measures the CVM boot image at launch and
later signs attestation reports requested from inside the guest.  A report
carries the launch measurement, the *VMPL of the requesting software*, and
caller-supplied report data (Veil uses a DH public value to bootstrap the
secure user channel, section 5.1).

The PSP is trusted hardware in the paper's threat model; the hypervisor
merely transports reports and cannot forge them (it lacks the signing key).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import (DhKeyPair, RsaKeyPair, RsaPublicKey, generate_keypair,
                      sha256)
from ..errors import AttestationError

# One platform signing key per interpreter: RSA keygen is the slowest thing
# in the whole simulator and the key's identity is irrelevant to the
# experiments, so it is generated once and shared.
_PLATFORM_KEY: RsaKeyPair | None = None


def platform_signing_key() -> RsaKeyPair:
    """Process-wide PSP signing key (lazy)."""
    global _PLATFORM_KEY
    if _PLATFORM_KEY is None:
        _PLATFORM_KEY = generate_keypair()
    return _PLATFORM_KEY


@dataclass(frozen=True)
class AttestationReport:
    """A signed attestation report, as produced by the PSP."""

    measurement: bytes        # SHA-256 launch digest of the boot image
    requester_vmpl: int       # VMPL of the software that asked for it
    report_data: bytes        # caller-chosen 64 bytes (DH public, nonce...)
    signature: bytes

    def signed_blob(self) -> bytes:
        """The byte string the PSP signature covers."""
        return (self.measurement + bytes([self.requester_vmpl]) +
                self.report_data)


class SecureProcessor:
    """The PSP: measures launches and signs reports."""

    def __init__(self, keypair: RsaKeyPair | None = None):
        self._key = keypair or platform_signing_key()
        self._launch_measurement: bytes | None = None

    @property
    def public_key(self) -> RsaPublicKey:
        return self._key.public

    def measure_launch(self, boot_image: bytes) -> bytes:
        """Record the launch digest of the boot disk image (section 5.1)."""
        self._launch_measurement = sha256(boot_image)
        return self._launch_measurement

    @property
    def launch_measurement(self) -> bytes:
        if self._launch_measurement is None:
            raise AttestationError("no launch has been measured")
        return self._launch_measurement

    def attestation_report(self, *, requester_vmpl: int,
                           report_data: bytes) -> AttestationReport:
        """Sign a report for software running at ``requester_vmpl``."""
        if len(report_data) > 64:
            raise AttestationError("report data limited to 64 bytes")
        report_data = report_data.ljust(64, b"\x00")
        unsigned = AttestationReport(
            measurement=self.launch_measurement,
            requester_vmpl=requester_vmpl,
            report_data=report_data, signature=b"")
        sig = self._key.sign(unsigned.signed_blob())
        return AttestationReport(
            measurement=unsigned.measurement,
            requester_vmpl=unsigned.requester_vmpl,
            report_data=unsigned.report_data, signature=sig)


class RemoteUser:
    """The remote tenant who verifies attestation and talks to VeilMon.

    Carries the *expected* boot-image digest (the user built the image) and
    the AMD public key.  :meth:`verify` returns the channel key on success.
    """

    def __init__(self, expected_measurement: bytes,
                 platform_public: RsaPublicKey):
        self.expected_measurement = expected_measurement
        self.platform_public = platform_public
        # The modeled relying party lives inside the deterministic fleet
        # transcript, so its DH pair derives from the policy it carries.
        self.dh = DhKeyPair.from_seed(b"remote-user", expected_measurement)

    def verify(self, report: AttestationReport, *,
               require_vmpl: int = 0) -> None:
        """Verify signature, measurement, and requester VMPL."""
        from ..errors import SecurityViolation
        try:
            self.platform_public.verify(report.signed_blob(),
                                        report.signature)
        except SecurityViolation as bad_sig:
            raise AttestationError(
                f"report signature invalid: {bad_sig}") from bad_sig
        if report.measurement != self.expected_measurement:
            raise AttestationError(
                "launch measurement mismatch: boot image was tampered with")
        if report.requester_vmpl != require_vmpl:
            raise AttestationError(
                f"report requested from VMPL-{report.requester_vmpl}, "
                f"expected VMPL-{require_vmpl}")

    def channel_key_from_report(self, report: AttestationReport,
                                dh_public_blob: bytes, *,
                                require_vmpl: int = 0) -> bytes:
        """Verify the report, bind the peer's DH public value, derive a key.

        Report data is only 64 bytes, so (as real SNP deployments do) it
        carries ``SHA-256(peer DH public)`` while the full public value
        travels over the untrusted transport.  Tampering with the public
        value breaks the hash binding.
        """
        self.verify(report, require_vmpl=require_vmpl)
        if sha256(dh_public_blob) != report.report_data[:32]:
            raise AttestationError("DH public value not bound to report")
        peer_public = int.from_bytes(dh_public_blob, "big")
        return self.dh.shared_key(peer_public)
