"""Self-contained enclave binaries (paper section 6.2).

The program to be shielded is provided as a self-contained binary with its
own C library and no outside calls.  Here a binary is a code blob plus
sizing for data/heap/stack regions; the kernel module lays it out in the
process address space at the enclave window and VeilS-ENC measures it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import MeasurementChain, page_measurement, sha256_hex
from ..hw.memory import PAGE_SIZE


@dataclass(frozen=True)
class EnclaveBinary:
    """A relocatable, statically linked enclave image."""

    name: str
    code: bytes
    data: bytes = b""
    heap_pages: int = 16
    stack_pages: int = 4
    entry_offset: int = 0

    @property
    def code_pages(self) -> int:
        return max(1, (len(self.code) + PAGE_SIZE - 1) // PAGE_SIZE)

    @property
    def data_pages(self) -> int:
        return max(1, (len(self.data) + PAGE_SIZE - 1) // PAGE_SIZE)

    @property
    def total_pages(self) -> int:
        return (self.code_pages + self.data_pages + self.heap_pages +
                self.stack_pages + 1)        # +1: the IDCB page

    def layout(self, base_vaddr: int) -> dict:
        """Region layout: name -> (vaddr, pages, writable, executable)."""
        cursor = base_vaddr
        out = {}
        for name, pages, writable, executable in (
                ("code", self.code_pages, False, True),
                ("data", self.data_pages, True, False),
                ("heap", self.heap_pages, True, False),
                ("stack", self.stack_pages, True, False),
                # One page for the enclave<->service IDCB (section 6.2
                # permission-change requests travel through it).
                ("idcb", 1, True, False)):
            out[name] = (cursor, pages, writable, executable)
            cursor += pages * PAGE_SIZE
        return out

    def expected_measurement(self, base_vaddr: int) -> str:
        """The measurement a remote user computes for attestation.

        Mirrors VeilS-ENC's measurement procedure exactly: page contents
        plus metadata (vpn, permissions), in layout order.
        """
        chain = MeasurementChain()
        layout = self.layout(base_vaddr)
        blobs = {"code": self.code, "data": self.data}
        for name, (vaddr, pages, writable, executable) in layout.items():
            blob = blobs.get(name, b"")
            for index in range(pages):
                content = blob[index * PAGE_SIZE:(index + 1) * PAGE_SIZE]
                content = content.ljust(PAGE_SIZE, b"\x00")
                # Same record label VeilS-ENC uses, so user- and
                # service-side measurements agree bit for bit.
                chain.extend("enc-page", page_measurement(
                    content, vpn=(vaddr >> 12) + index,
                    writable=writable, executable=executable))
        return chain.hexdigest

    def fingerprint(self) -> str:
        """Identity hash over name + code + data."""
        return sha256_hex(self.name.encode() + self.code + self.data)


def build_test_binary(name: str = "enclave-app", *, code_size: int = 8192,
                      heap_pages: int = 16,
                      stack_pages: int = 4) -> EnclaveBinary:
    """Synthesize a deterministic enclave binary for tests/benchmarks."""
    code = (name.encode() + b"\x00") * (code_size // (len(name) + 1) + 1)
    return EnclaveBinary(name=name, code=code[:code_size],
                         data=b"\x00" * 256, heap_pages=heap_pages,
                         stack_pages=stack_pages)
