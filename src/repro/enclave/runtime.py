"""The in-enclave SDK runtime (the paper's modified musl-libc).

Responsibilities (section 7):

* enclave entries and exits through the user-mapped GHCB;
* system-call redirection: marshal arguments into the shared staging
  region, exit to the untrusted application, let it execute the real
  syscall, re-enter, copy results back, IAGO-check returned pointers;
* demand-paging support: an enclave access that faults exits to the OS,
  waits for VeilS-ENC to verify + remap the page, and retries;
* fail-stop on unsupported syscalls (the enclave is killed).

All enclave memory access happens at DomENC (VMPL-2, CPL-3) through the
protected page table, so the runtime itself is subject to the isolation
it relies on.
"""

from __future__ import annotations

import typing

from ..errors import SdkError, SecurityViolation
from ..hw.ghcb import Ghcb
from ..hw.memory import PAGE_SIZE, page_base
from ..hw.pagetable import PageFault
from ..hw.rmp import VMPL_ENC, VMPL_SER, VMPL_UNT
from .allocator import EnclaveHeap
from .sanitizer import SyscallSanitizer

if typing.TYPE_CHECKING:
    from ..core.boot import VeilSystem
    from ..core.integration import EnclaveSetup
    from ..hw.vcpu import VirtualCpu

_STAGING_ALIGN = 16


class EnclaveRuntime:
    """Mediates one enclave's execution on its pinned VCPU."""

    def __init__(self, system: "VeilSystem", setup: "EnclaveSetup",
                 vcpu_id: int | None = None):
        self.system = system
        self.setup = setup
        self.kernel = system.kernel
        self.machine = system.machine
        record = system.enc.enclaves[setup.enclave_id]
        self.vcpu_id = vcpu_id if vcpu_id is not None else record.vcpu_id
        self.core: "VirtualCpu" = system.machine.cores[self.vcpu_id]
        self.proc = setup.proc
        self.sanitizer = SyscallSanitizer(self)
        self.inside = False
        self.killed = False
        self._staging_cursor = 0
        #: Section-10 side-channel mitigation: have VeilS-ENC WBINVD the
        #: core's microarchitectural state on every enclave exit.
        self.flush_on_exit = False
        self._flushing = False
        self.tracer = system.machine.tracer
        # ---- telemetry for the Fig. 5 overhead breakdown ----------------
        self.syscall_count = 0
        self.enclave_exits = 0        # switch round trips (syscalls+entry)
        self.interrupt_exits = 0
        self.redirect_bytes = 0
        self.fault_swapins = 0

    # ------------------------------------------------------------------
    # Entry / exit (user-mapped GHCB, section 6.2)
    # ------------------------------------------------------------------

    @property
    def thread_ghcb_ppn(self) -> int:
        """This thread's per-VCPU user-mapped GHCB (section 6.2)."""
        record = self.system.enc.enclaves[self.setup.enclave_id]
        thread = record.threads.get(self.vcpu_id)
        if thread is None:
            return self.setup.ghcb_ppn
        return thread[1]

    def _user_ghcb(self) -> Ghcb:
        return Ghcb(self.thread_ghcb_ppn)

    def _arm_ghcb(self) -> None:
        """OS-side step: point the live GHCB MSR at the user GHCB before
        resuming the enclave (the kernel does this at schedule time)."""
        with self.kernel.kernel_context(self.core) as core:
            core.wrmsr_ghcb(page_base(self.thread_ghcb_ppn))

    def enter(self) -> None:
        """Transition DomUNT -> DomENC."""
        if self.killed:
            raise SdkError("enclave was killed")
        if self.inside:
            raise SdkError("already inside the enclave")
        with self.tracer.span("enclave", "enter", vcpu=self.vcpu_id,
                              vmpl=VMPL_UNT, pid=self.proc.pid,
                              args={"enclave_id": self.setup.enclave_id}):
            # The OS scheduler re-registers the thread's VMSA whenever a
            # different DomENC instance last ran on this core (several
            # enclaves multiplex one core's VMPL-2 slot).
            record = self.system.enc.enclaves[self.setup.enclave_id]
            my_vmsa = record.threads[self.vcpu_id][0]
            scheduled = self.system.hv.vmsas.get((self.vcpu_id, VMPL_ENC))
            if scheduled is not my_vmsa:
                self.system.integration.schedule_enclave(
                    self.core, self.setup.enclave_id,
                    vcpu_id=self.vcpu_id, ghcb_ppn=self.thread_ghcb_ppn)
            else:
                self._arm_ghcb()
            ghcb = self._user_ghcb()
            ghcb.write_message(
                self.machine.memory,
                {"op": "domain_switch", "target_vmpl": VMPL_ENC})
            self.core.vmgexit()
        self.inside = True
        self.setup.active_runtime = self
        self.enclave_exits += 1
        # Enclave execution leaves a per-core microarchitectural
        # footprint an attacker could probe after exit (section 10).
        self.core.taint_microarch(f"enclave-{self.setup.enclave_id}")
        if self.setup.heap is None:
            self._init_heap()

    def exit_to_untrusted(self) -> None:
        """Transition DomENC -> DomUNT (the costly enclave exit)."""
        if not self.inside:
            return
        with self.tracer.span("enclave", "exit", vcpu=self.vcpu_id,
                              vmpl=VMPL_ENC, pid=self.proc.pid,
                              args={"enclave_id": self.setup.enclave_id}):
            if self.flush_on_exit and not self._flushing:
                # Route through VeilS-ENC so privileged WBINVD scrubs
                # this core's cache/TLB footprint before untrusted code
                # runs.
                self._flushing = True
                try:
                    self.service_request({
                        "op": "enc_flush_cpu_state",
                        "enclave_id": self.setup.enclave_id})
                finally:
                    self._flushing = False
            ghcb = self._user_ghcb()
            ghcb.write_message(
                self.machine.memory,
                {"op": "domain_switch", "target_vmpl": VMPL_UNT})
            self.core.vmgexit()
        self.inside = False

    @property
    def heap(self) -> EnclaveHeap | None:
        """The enclave's heap allocator, shared by every thread."""
        return self.setup.heap

    def _init_heap(self) -> None:
        heap_vaddr, heap_pages, _w, _x = self.setup.layout["heap"]
        setup = self.setup

        # Accessors dispatch through whichever thread runtime is
        # currently executing inside the enclave, so allocator metadata
        # operations always run in a valid DomENC context.
        def heap_read(vaddr: int, length: int) -> bytes:
            return setup.active_runtime.enclave_read(vaddr, length)

        def heap_write(vaddr: int, data: bytes) -> None:
            setup.active_runtime.enclave_write(vaddr, data)

        setup.heap = EnclaveHeap(heap_vaddr, heap_pages * PAGE_SIZE,
                                 heap_read, heap_write)

    # ------------------------------------------------------------------
    # Enclave memory access (DomENC context; demand paging on fault)
    # ------------------------------------------------------------------

    def _require_inside(self) -> None:
        if not self.inside:
            raise SdkError("enclave memory access from outside")

    def enclave_read(self, vaddr: int, length: int) -> bytes:
        """Read enclave memory at DomENC (swaps in on fault)."""
        self._require_inside()
        try:
            return self.core.read(vaddr, length)
        except PageFault:
            self._swap_in(vaddr)
            return self.core.read(vaddr, length)

    def enclave_write(self, vaddr: int, data: bytes) -> None:
        """Write enclave memory at DomENC (swaps in on fault)."""
        self._require_inside()
        try:
            self.core.write(vaddr, data)
        except PageFault:
            self._swap_in(vaddr)
            self.core.write(vaddr, data)

    def _swap_in(self, vaddr: int) -> None:
        """Enclave page fault: exit, let the OS + VeilS-ENC restore the
        page (verified against the freshness hash), and return."""
        self.exit_to_untrusted()
        self.system.integration.restore_enclave_page(
            self.core, self.setup.enclave_id, vaddr)
        self.enter()
        self.fault_swapins += 1

    def address_in_enclave(self, addr: int) -> bool:
        """Whether an address falls in the enclave window (IAGO check)."""
        end = (self.setup.base_vaddr +
               self.setup.binary.total_pages * PAGE_SIZE)
        return self.setup.base_vaddr <= addr < end

    # ------------------------------------------------------------------
    # Shared staging region (ocall buffers)
    # ------------------------------------------------------------------

    def staging_reset(self) -> None:
        """Reset the per-call ocall staging cursor."""
        self._staging_cursor = 0

    def staging_alloc(self, length: int) -> int:
        """Reserve a staging slot in the shared region."""
        aligned = (length + _STAGING_ALIGN - 1) & ~(_STAGING_ALIGN - 1)
        limit = len(self.setup.shared_pages) * PAGE_SIZE
        if self._staging_cursor + aligned > limit:
            raise SdkError(
                f"ocall staging exhausted ({length}B requested)")
        vaddr = self.setup.shared_vaddr + self._staging_cursor
        self._staging_cursor += max(aligned, _STAGING_ALIGN)
        return vaddr

    def shared_write(self, vaddr: int, data: bytes) -> None:
        """Write the shared staging region from DomENC."""
        self._require_inside()
        self.core.write(vaddr, data)

    def shared_read(self, vaddr: int, length: int) -> bytes:
        """Read the shared staging region from DomENC."""
        self._require_inside()
        return self.core.read(vaddr, length)

    # veil-warp: the sanitizer's marshalling copies are gather+scatter
    # pairs (enclave <-> staging).  These combined helpers make each
    # pair one call with one inside-check; the two VCPU accesses -- and
    # therefore every ledger charge -- are exactly those of the
    # read-then-write pair they replace.

    def stage_out(self, enclave_vaddr: int, staging_vaddr: int,
                  length: int) -> None:
        """Bulk-copy enclave bytes into the shared staging region."""
        self._require_inside()
        try:
            data = self.core.read(enclave_vaddr, length)
        except PageFault:
            self._swap_in(enclave_vaddr)
            data = self.core.read(enclave_vaddr, length)
        self.core.write(staging_vaddr, data)

    def stage_in(self, staging_vaddr: int, enclave_vaddr: int,
                 length: int) -> None:
        """Bulk-copy shared staging bytes back into the enclave."""
        self._require_inside()
        data = self.core.read(staging_vaddr, length)
        try:
            self.core.write(enclave_vaddr, data)
        except PageFault:
            self._swap_in(enclave_vaddr)
            self.core.write(enclave_vaddr, data)

    # ------------------------------------------------------------------
    # Cost accounting helpers used by the sanitizer
    # ------------------------------------------------------------------

    def charge(self, cycles: int, category: str = "sdk") -> None:
        """Charge SDK-side cycles to the ledger."""
        self.machine.ledger.charge(category, cycles)

    def charge_copy(self, nbytes: int) -> None:
        """Charge the copy cost for ``nbytes``."""
        self.machine.ledger.charge("copy",
                                   self.machine.cost.copy_cost(nbytes))

    # ------------------------------------------------------------------
    # System-call redirection (OCALL path, section 6.2)
    # ------------------------------------------------------------------

    def syscall(self, name: str, *args):
        """Redirect a syscall to the untrusted application."""
        self._require_inside()
        if self.killed:
            raise SdkError("enclave was killed")
        self.staging_reset()
        with self.tracer.span("enclave", f"redirect:{name}",
                              vcpu=self.vcpu_id, vmpl=VMPL_ENC,
                              pid=self.proc.pid):
            try:
                marshalled = self.sanitizer.marshal(name, args)
            except SdkError:
                self._kill()
                raise
            before_exits = self.core.exit_count
            self.exit_to_untrusted()
            try:
                result = self.kernel.syscall(self.core, self.proc, name,
                                             *marshalled.proxy_args)
            finally:
                self.enter()
            try:
                self.sanitizer.finish(name, marshalled, result)
            except SecurityViolation:
                self._kill()
                raise
        self.syscall_count += 1
        self.enclave_exits += 1
        self.redirect_bytes += marshalled.bytes_total
        return result

    def _kill(self) -> None:
        """Fail-stop: unsupported syscall or IAGO violation kills the
        enclave (section 7)."""
        self.killed = True
        if self.inside:
            self.exit_to_untrusted()
        self.system.integration.destroy_enclave(self.core,
                                                self.setup.enclave_id)

    # ------------------------------------------------------------------
    # System-call batching (paper section 10, FlexSC-style)
    # ------------------------------------------------------------------

    def batch(self) -> "SyscallBatch":
        """Start a syscall batch: queued calls marshal immediately but
        execute under a *single* enclave exit at flush time.

        Only calls without inbound buffers or pointer results are
        batchable (their results are not needed to continue); this is the
        paper's proposed exit-amortization optimization (section 10).
        """
        return SyscallBatch(self)

    def _execute_batch(self, queued: list) -> list:
        """One exit services every queued call (the flush path)."""
        if not queued:
            return []
        self._require_inside()
        with self.tracer.span("enclave", "batch_flush",
                              vcpu=self.vcpu_id, vmpl=VMPL_ENC,
                              pid=self.proc.pid,
                              args={"calls": len(queued)}):
            self.exit_to_untrusted()
            results = []
            try:
                for name, proxy_args in queued:
                    results.append(self.kernel.syscall(
                        self.core, self.proc, name, *proxy_args))
            finally:
                self.enter()
        self.syscall_count += len(queued)
        self.enclave_exits += 1
        return results

    # ------------------------------------------------------------------
    # Compute + timer interrupts
    # ------------------------------------------------------------------

    def compute(self, cycles: int) -> None:
        """Model enclave-internal computation; may take timer interrupts,
        which the hypervisor relays to DomUNT (section 6.2)."""
        self._require_inside()
        self.machine.ledger.charge("compute", cycles)
        before = self.kernel.scheduler.tick_count
        if self.kernel.scheduler.maybe_tick(self.core):
            self.interrupt_exits += self.kernel.scheduler.tick_count - before

    # ------------------------------------------------------------------
    # Permission changes from inside the enclave (via its own IDCB)
    # ------------------------------------------------------------------

    def enclave_mprotect(self, vaddr: int, num_pages: int, *,
                         writable: bool, executable: bool) -> dict:
        """Send a permission-change request directly to VeilS-ENC through
        the enclave's GHCB + IDCB (the OS is not on this path)."""
        self._require_inside()
        record = self.system.enc.enclaves[self.setup.enclave_id]
        assert record.idcb is not None
        return self.service_request({
            "op": "enc_mprotect", "enclave_id": self.setup.enclave_id,
            "vaddr": vaddr, "num_pages": num_pages, "writable": writable,
            "executable": executable})

    def service_request(self, request: dict) -> dict:
        """DomENC -> DomSER round trip through the enclave's own IDCB
        and user GHCB (the OS is not on this path)."""
        self._require_inside()
        record = self.system.enc.enclaves[self.setup.enclave_id]
        assert record.idcb is not None
        request = dict(request)
        request["_reply_to"] = VMPL_ENC
        with self.tracer.span("enclave", f"service:{request.get('op')}",
                              vcpu=self.vcpu_id, vmpl=VMPL_ENC,
                              pid=self.proc.pid,
                              args={"enclave_id": self.setup.enclave_id}):
            record.idcb.write_request(self.machine.memory, request)
            ghcb = self._user_ghcb()
            ghcb.write_message(
                self.machine.memory,
                {"op": "domain_switch", "target_vmpl": VMPL_SER})
            self.core.vmgexit()
            # Core now runs DomSER: the service body handles the request
            # and switches back to DomENC.
            self.system.veilmon.on_ser_entry(self.core, idcb=record.idcb)
        self.enclave_exits += 1
        reply = record.idcb.read_reply(self.machine.memory)
        if reply.get("status") == "denied":
            raise SecurityViolation(str(reply.get("reason")))
        return reply


class SyscallBatch:
    """FlexSC-style syscall batching (paper section 10).

    Queued calls are marshalled into disjoint staging slots immediately;
    ``flush`` (or clean ``with``-exit) executes all of them under one
    enclave exit.  Only fire-and-forget calls — no inbound buffers, no
    pointer results — are batchable, since execution is deferred.
    """

    def __init__(self, runtime: EnclaveRuntime):
        self.rt = runtime
        self.queued: list = []
        self.results: list = []
        self._flushed = False

    def __enter__(self) -> "SyscallBatch":
        self.rt.staging_reset()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()

    def syscall(self, name: str, *args) -> int:
        """Queue one call; returns its index into ``results``."""
        if self._flushed:
            raise SdkError("batch already flushed")
        spec = self.rt.sanitizer.spec_for(name)
        marshalled = self.rt.sanitizer.marshal(name, args)
        if marshalled.copy_back or spec.returns_pointer:
            raise SdkError(
                f"{name!r} is not batchable (needs its result)")
        self.queued.append((name, marshalled.proxy_args))
        self.rt.redirect_bytes += marshalled.bytes_total
        return len(self.queued) - 1

    def write(self, fd: int, data: bytes) -> int:
        """Queue a write of enclave-resident bytes."""
        heap = self.rt.heap
        assert heap is not None
        buf = heap.malloc(max(len(data), 1))
        self.rt.enclave_write(buf, data)
        index = self.syscall("write", fd, buf, len(data))
        heap.free(buf)      # staging already holds the copy
        return index

    def flush(self) -> list:
        """Execute every queued call under a single enclave exit."""
        if self._flushed:
            return self.results
        self._flushed = True
        self.results = self.rt._execute_batch(self.queued)
        return self.results
