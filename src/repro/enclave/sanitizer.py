"""Spec-driven syscall marshalling and IAGO defences (paper sections 6.2/7).

For each redirected syscall the sanitizer:

1. deep-copies outbound buffers (and paths) from enclave memory into the
   shared staging region the untrusted application can see;
2. rewrites pointer arguments to point at the staging copies;
3. after the untrusted side returns, copies inbound buffers back into
   enclave memory;
4. IAGO-checks any pointer the OS returned: it must not alias enclave
   memory (the paper's "basic protection against IAGO attacks").
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from ..errors import SdkError, SecurityViolation
from .specs import ArgKind, CallSpec, SYSCALL_SPECS

#: Sanitizer bookkeeping per redirected call (spec walk, bounds checks).
SANITIZE_BASE_CYCLES = 400

if typing.TYPE_CHECKING:
    from .runtime import EnclaveRuntime


@dataclass
class MarshalledCall:
    """Result of marshalling one syscall's arguments."""

    proxy_args: list
    #: (staging_vaddr, enclave_vaddr, length) copies to perform on return.
    copy_back: list = field(default_factory=list)
    bytes_out: int = 0
    bytes_in: int = 0

    @property
    def bytes_total(self) -> int:
        return self.bytes_out + self.bytes_in


class SyscallSanitizer:
    """Deep-copy marshaller bound to one enclave runtime."""

    def __init__(self, runtime: "EnclaveRuntime"):
        self.runtime = runtime
        self.calls_sanitized = 0
        self.iago_rejections = 0

    def spec_for(self, name: str) -> CallSpec:
        """Look up a call spec; unknown/unsupported kills the enclave."""
        spec = SYSCALL_SPECS.get(name)
        if spec is None:
            raise SdkError(f"syscall {name!r} unknown to the SDK; "
                           "killing enclave")
        if not spec.supported:
            raise SdkError(f"syscall {name!r} unsupported inside enclaves; "
                           "killing enclave")
        return spec

    def _buffer_length(self, spec: CallSpec, arg_index: int,
                       args: tuple) -> int:
        arg_spec = spec.args[arg_index]
        if arg_spec.len_from is not None:
            return int(args[arg_spec.len_from])
        if arg_spec.const_len is not None:
            return arg_spec.const_len
        raise SdkError(f"{spec.name}: no length rule for "
                       f"argument {arg_spec.name!r}")

    def marshal(self, name: str, args: tuple) -> MarshalledCall:
        """Copy outbound data to staging and rewrite pointer args."""
        spec = self.spec_for(name)
        runtime = self.runtime
        runtime.charge(SANITIZE_BASE_CYCLES, "sanitizer")
        out = MarshalledCall(proxy_args=list(args))
        self.calls_sanitized += 1
        for index, arg_spec in enumerate(spec.args):
            if index >= len(args):
                break
            value = args[index]
            if arg_spec.kind == ArgKind.SCALAR:
                continue
            if arg_spec.kind == ArgKind.PATH:
                # Paths are passed as Python strings; charge the copy.
                runtime.charge_copy(len(str(value)) + 1)
                continue
            if arg_spec.kind == ArgKind.BUF_IN:
                length = self._buffer_length(spec, index, args)
                staging = runtime.staging_alloc(length)
                if length:
                    runtime.stage_out(int(value), staging, length)
                out.proxy_args[index] = staging
                out.bytes_out += length
            elif arg_spec.kind == ArgKind.BUF_OUT:
                length = self._buffer_length(spec, index, args)
                staging = runtime.staging_alloc(length)
                out.proxy_args[index] = staging
                out.copy_back.append((staging, int(value), length))
                out.bytes_in += length
            elif arg_spec.kind == ArgKind.IOVEC_IN:
                new_iov = []
                for vaddr, length in value:
                    staging = runtime.staging_alloc(length)
                    if length:
                        runtime.stage_out(int(vaddr), staging, length)
                    new_iov.append((staging, length))
                    out.bytes_out += length
                out.proxy_args[index] = new_iov
            elif arg_spec.kind == ArgKind.IOVEC_OUT:
                new_iov = []
                for vaddr, length in value:
                    staging = runtime.staging_alloc(length)
                    new_iov.append((staging, length))
                    out.copy_back.append((staging, int(vaddr), length))
                    out.bytes_in += length
                out.proxy_args[index] = new_iov
        return out

    def finish(self, name: str, marshalled: MarshalledCall,
               result) -> None:
        """Copy results back into the enclave and IAGO-check pointers."""
        spec = SYSCALL_SPECS[name]
        runtime = self.runtime
        copied = result if isinstance(result, int) else None
        for staging, enclave_vaddr, length in marshalled.copy_back:
            take = length
            if copied is not None and len(marshalled.copy_back) == 1:
                take = max(0, min(length, copied))
            if take:
                runtime.stage_in(staging, enclave_vaddr, take)
        if spec.returns_pointer and isinstance(result, int):
            if runtime.address_in_enclave(result):
                self.iago_rejections += 1
                raise SecurityViolation(
                    f"IAGO attack: OS returned pointer {result:#x} inside "
                    "enclave memory")
