"""Syscall call/type specifications for the enclave SDK sanitizer.

The paper's SDK derives a deep-copy marshalling library from Syzkaller's
syscall grammar (section 7): a *call specification* describing each
argument's role and a *type specification* describing buffer lengths and
pointer relationships (e.g. ``write``'s third argument is the length of
its second).

The same structure is reproduced here: :data:`SYSCALL_SPECS` maps every
syscall the SDK knows about to a :class:`CallSpec`.  Calls marked
unsupported kill the enclave on use, matching the SDK's fail-stop design.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ArgKind(enum.Enum):
    """Marshalling roles an argument can play."""
    SCALAR = "scalar"        # passed through unchanged
    PATH = "path"            # NUL-terminated string copied out
    BUF_IN = "buf_in"        # enclave -> untrusted (e.g. write payload)
    BUF_OUT = "buf_out"      # untrusted -> enclave (e.g. read target)
    IOVEC_IN = "iovec_in"    # scatter list, enclave -> untrusted
    IOVEC_OUT = "iovec_out"  # scatter list, untrusted -> enclave


@dataclass(frozen=True)
class ArgSpec:
    """One argument's marshalling rule."""

    name: str
    kind: ArgKind = ArgKind.SCALAR
    #: Index of the argument holding this buffer's byte length.
    len_from: int | None = None
    #: Fixed length when no length argument exists.
    const_len: int | None = None


@dataclass(frozen=True)
class CallSpec:
    """A syscall's full marshalling specification."""

    name: str
    args: tuple = ()
    #: The OS's return value is a pointer that must be IAGO-checked.
    returns_pointer: bool = False
    #: Unsupported calls kill the enclave on execution (fail-stop SDK).
    supported: bool = True
    #: LTP semantic cases known to be unimplemented (subset of flags or
    #: edge behaviours); drives the conformance-suite pass pattern.
    unimplemented_cases: tuple = ()


def _spec(name: str, *args: ArgSpec, returns_pointer: bool = False,
          supported: bool = True,
          unimplemented_cases: tuple = ()) -> CallSpec:
    return CallSpec(name=name, args=tuple(args),
                    returns_pointer=returns_pointer, supported=supported,
                    unimplemented_cases=unimplemented_cases)


S = ArgSpec  # local alias for table brevity

SYSCALL_SPECS: dict[str, CallSpec] = {}


def _register(spec: CallSpec) -> None:
    SYSCALL_SPECS[spec.name] = spec


# ---- file I/O ---------------------------------------------------------------
_register(_spec("open", S("path", ArgKind.PATH), S("flags"), S("mode")))
_register(_spec("openat", S("dirfd"), S("path", ArgKind.PATH), S("flags"),
                S("mode"), unimplemented_cases=("O_TMPFILE",)))
_register(_spec("creat", S("path", ArgKind.PATH), S("mode")))
_register(_spec("close", S("fd")))
_register(_spec("read", S("fd"), S("buf", ArgKind.BUF_OUT, len_from=2),
                S("count")))
_register(_spec("write", S("fd"), S("buf", ArgKind.BUF_IN, len_from=2),
                S("count")))
_register(_spec("pread", S("fd"), S("buf", ArgKind.BUF_OUT, len_from=2),
                S("count"), S("offset")))
_register(_spec("pwrite", S("fd"), S("buf", ArgKind.BUF_IN, len_from=2),
                S("count"), S("offset")))
_register(_spec("readv", S("fd"), S("iov", ArgKind.IOVEC_OUT)))
_register(_spec("writev", S("fd"), S("iov", ArgKind.IOVEC_IN)))
_register(_spec("lseek", S("fd"), S("offset"), S("whence")))
_register(_spec("stat", S("path", ArgKind.PATH)))
_register(_spec("fstat", S("fd")))
_register(_spec("getdents", S("fd")))
_register(_spec("truncate", S("path", ArgKind.PATH), S("length")))
_register(_spec("ftruncate", S("fd"), S("length")))
_register(_spec("sendfile", S("out_fd"), S("in_fd"), S("count")))
_register(_spec("splice", S("in_fd"), S("out_fd"), S("count"),
                unimplemented_cases=("SPLICE_F_MOVE",)))

# ---- namespace ---------------------------------------------------------------
_register(_spec("link", S("old", ArgKind.PATH), S("new", ArgKind.PATH)))
_register(_spec("unlink", S("path", ArgKind.PATH)))
_register(_spec("unlinkat", S("dirfd"), S("path", ArgKind.PATH),
                S("flags")))
_register(_spec("symlink", S("target", ArgKind.PATH),
                S("link", ArgKind.PATH)))
_register(_spec("readlink", S("path", ArgKind.PATH),
                S("buf", ArgKind.BUF_OUT, len_from=2), S("bufsize")))
_register(_spec("rename", S("old", ArgKind.PATH), S("new", ArgKind.PATH)))
_register(_spec("mkdir", S("path", ArgKind.PATH), S("mode")))
_register(_spec("rmdir", S("path", ArgKind.PATH)))
_register(_spec("mknod", S("path", ArgKind.PATH), S("mode"),
                unimplemented_cases=("S_IFCHR", "S_IFBLK")))
_register(_spec("mknodat", S("dirfd"), S("path", ArgKind.PATH), S("mode"),
                unimplemented_cases=("S_IFCHR", "S_IFBLK")))
_register(_spec("chmod", S("path", ArgKind.PATH), S("mode")))
_register(_spec("fchmod", S("fd"), S("mode")))

# ---- fds -------------------------------------------------------------------------
_register(_spec("dup", S("fd")))
_register(_spec("dup2", S("oldfd"), S("newfd")))
_register(_spec("dup3", S("oldfd"), S("newfd"), S("flags")))
_register(_spec("fcntl", S("fd"), S("cmd"), S("arg"),
                unimplemented_cases=("F_SETLK", "F_GETOWN")))
_register(_spec("pipe", unimplemented_cases=("O_DIRECT",)))
_register(_spec("pipe2", S("flags"), unimplemented_cases=("O_DIRECT",)))

# ---- memory ------------------------------------------------------------------------
_register(_spec("mmap", S("addr"), S("length"), S("prot"), S("flags"),
                S("fd"), S("offset"), returns_pointer=True))
_register(_spec("munmap", S("addr"), S("length")))
_register(_spec("mprotect", S("addr"), S("length"), S("prot")))
_register(_spec("brk", S("addr"), returns_pointer=True))

# ---- network ------------------------------------------------------------------------
_register(_spec("socket", S("family"), S("type"), S("proto"),
                unimplemented_cases=("AF_INET6", "SOCK_RAW")))
_register(_spec("bind", S("fd"), S("addr"), S("port")))
_register(_spec("listen", S("fd"), S("backlog")))
_register(_spec("accept", S("fd")))
_register(_spec("accept4", S("fd"), S("flags")))
_register(_spec("connect", S("fd"), S("addr"), S("port")))
_register(_spec("sendto", S("fd"), S("buf", ArgKind.BUF_IN, len_from=2),
                S("count"), S("dest")))
_register(_spec("recvfrom", S("fd"),
                S("buf", ArgKind.BUF_OUT, len_from=2), S("count")))
_register(_spec("sendmsg", S("fd"), S("iov", ArgKind.IOVEC_IN),
                unimplemented_cases=("SCM_RIGHTS",)))
_register(_spec("recvmsg", S("fd"), S("iov", ArgKind.IOVEC_OUT),
                unimplemented_cases=("SCM_RIGHTS",)))
_register(_spec("socketpair", S("family"), S("type")))

# ---- paths & sync (at-variants share their base call's grammar) -------------
_register(_spec("access", S("path", ArgKind.PATH), S("mode")))
_register(_spec("faccessat", S("dirfd"), S("path", ArgKind.PATH),
                S("mode")))
_register(_spec("chdir", S("path", ArgKind.PATH)))
_register(_spec("getcwd"))
_register(_spec("umask", S("mask")))
_register(_spec("sync"))
_register(_spec("fsync", S("fd")))
_register(_spec("fdatasync", S("fd")))
_register(_spec("madvise", S("addr"), S("length"), S("advice")))
_register(_spec("msync", S("addr"), S("length"), S("flags")))
_register(_spec("linkat", S("olddirfd"), S("old", ArgKind.PATH),
                S("newdirfd"), S("new", ArgKind.PATH)))
_register(_spec("symlinkat", S("target", ArgKind.PATH), S("newdirfd"),
                S("link", ArgKind.PATH)))
_register(_spec("renameat", S("olddirfd"), S("old", ArgKind.PATH),
                S("newdirfd"), S("new", ArgKind.PATH)))
_register(_spec("fchmodat", S("dirfd"), S("path", ArgKind.PATH),
                S("mode")))

# ---- identity / process -----------------------------------------------------------------
_register(_spec("getpid"))
_register(_spec("getppid"))
_register(_spec("getpgid", S("pid")))
_register(_spec("gettid"))
_register(_spec("sched_yield"))
_register(_spec("getuid"))
_register(_spec("geteuid"))
_register(_spec("setuid", S("uid")))
_register(_spec("setreuid", S("ruid"), S("euid")))
_register(_spec("setresuid", S("ruid"), S("euid"), S("suid")))
_register(_spec("exit", S("code")))
_register(_spec("wait4", S("pid"), unimplemented_cases=("WNOHANG",)))
_register(_spec("uname"))
_register(_spec("getrandom", S("buf", ArgKind.BUF_OUT, len_from=1),
                S("count")))
_register(_spec("clock_gettime", S("clock_id")))
_register(_spec("nanosleep", S("nanos")))

# ---- unsupported inside enclaves (fail-stop; the SDK kills the enclave) ----
for _name in ("fork", "vfork", "clone", "execve", "ioctl", "ptrace",
              "mount", "umount", "chroot", "reboot", "kexec_load",
              "init_module", "delete_module", "iopl", "ioperm",
              "userfaultfd", "io_uring_setup", "io_uring_enter", "bpf",
              "perf_event_open", "process_vm_readv", "process_vm_writev",
              "sigaltstack", "rt_sigaction", "rt_sigreturn", "seccomp",
              "setns", "unshare", "pivot_root", "swapon", "swapoff",
              "quotactl", "acct", "personality", "modify_ldt",
              "arch_prctl", "set_thread_area", "vm86"):
    _register(_spec(_name, supported=False))


def supported_syscalls() -> list[str]:
    """Syscalls the SDK marshals."""
    return sorted(name for name, spec in SYSCALL_SPECS.items()
                  if spec.supported)


def unsupported_syscalls() -> list[str]:
    """Syscalls that kill the enclave on use."""
    return sorted(name for name, spec in SYSCALL_SPECS.items()
                  if not spec.supported)
