"""EnclaveLibc: the C-library surface enclave programs code against.

Wraps the runtime's redirected syscalls with musl-style conveniences:
buffers are allocated on the enclave heap, string I/O is mediated, and
``printf`` writes to stdout through the redirection path.  Enclave
programs in this reproduction are Python callables ``main(libc)`` that
use only this surface -- the analog of a self-contained static binary.
"""

from __future__ import annotations

import typing

from ..errors import SdkError
from .runtime import EnclaveRuntime

if typing.TYPE_CHECKING:
    pass


class EnclaveLibc:
    """Per-enclave libc instance (single-threaded, like the prototype)."""

    def __init__(self, runtime: EnclaveRuntime):
        self.rt = runtime

    # -- memory ------------------------------------------------------------

    @property
    def heap(self):
        if self.rt.heap is None:
            raise SdkError("heap used before enclave entry")
        return self.rt.heap

    def malloc(self, nbytes: int) -> int:
        """Allocate ``nbytes`` on the enclave heap; returns a vaddr."""
        return self.heap.malloc(nbytes)

    def free(self, vaddr: int) -> None:
        """Release a malloc'd pointer."""
        self.heap.free(vaddr)

    def poke(self, vaddr: int, data: bytes) -> None:
        """Write bytes into enclave memory."""
        self.rt.enclave_write(vaddr, data)

    def peek(self, vaddr: int, length: int) -> bytes:
        """Read bytes from enclave memory."""
        return self.rt.enclave_read(vaddr, length)

    # -- files ---------------------------------------------------------------

    def open(self, path: str, flags: int = 0, mode: int = 0o644) -> int:
        """Redirected open(2); returns an fd."""
        return self.rt.syscall("open", path, flags, mode)

    def close(self, fd: int) -> int:
        """Redirected close(2)."""
        return self.rt.syscall("close", fd)

    def read(self, fd: int, count: int) -> bytes:
        """Redirected read(2) via a heap buffer; returns the bytes."""
        buf = self.malloc(max(count, 1))
        try:
            got = self.rt.syscall("read", fd, buf, count)
            return self.peek(buf, got) if got else b""
        finally:
            self.free(buf)

    def write(self, fd: int, data: bytes) -> int:
        """Redirected write(2) of enclave-resident data."""
        buf = self.malloc(max(len(data), 1))
        try:
            self.poke(buf, data)
            return self.rt.syscall("write", fd, buf, len(data))
        finally:
            self.free(buf)

    def pread(self, fd: int, count: int, offset: int) -> bytes:
        """Redirected positional read; offset unchanged."""
        buf = self.malloc(max(count, 1))
        try:
            got = self.rt.syscall("pread", fd, buf, count, offset)
            return self.peek(buf, got) if got else b""
        finally:
            self.free(buf)

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        """Redirected positional write; offset unchanged."""
        buf = self.malloc(max(len(data), 1))
        try:
            self.poke(buf, data)
            return self.rt.syscall("pwrite", fd, buf, len(data), offset)
        finally:
            self.free(buf)

    def lseek(self, fd: int, offset: int, whence: int) -> int:
        """Redirected lseek(2)."""
        return self.rt.syscall("lseek", fd, offset, whence)

    def stat(self, path: str) -> dict:
        """Redirected stat(2); returns metadata."""
        return self.rt.syscall("stat", path)

    def unlink(self, path: str) -> int:
        """Redirected unlink(2)."""
        return self.rt.syscall("unlink", path)

    def printf(self, text: str) -> int:
        """Formatted output to stdout through the redirection path."""
        return self.write(1, text.encode("utf-8"))

    # -- memory mapping ----------------------------------------------------------

    def mmap(self, length: int, prot: int = 3, flags: int = 0x22,
             fd: int = -1, offset: int = 0) -> int:
        """Redirected mmap(2); the result is IAGO-checked."""
        return self.rt.syscall("mmap", 0, length, prot, flags, fd, offset)

    def munmap(self, addr: int, length: int) -> int:
        """Redirected munmap(2)."""
        return self.rt.syscall("munmap", addr, length)

    # -- network -------------------------------------------------------------------

    def socket(self, family: int = 2, stype: int = 1,
               proto: int = 0) -> int:
        """Redirected socket(2); returns an fd."""
        return self.rt.syscall("socket", family, stype, proto)

    def bind(self, fd: int, addr: str, port: int) -> int:
        """Redirected bind(2)."""
        return self.rt.syscall("bind", fd, addr, port)

    def listen(self, fd: int, backlog: int = 16) -> int:
        """Redirected listen(2)."""
        return self.rt.syscall("listen", fd, backlog)

    def accept(self, fd: int) -> int:
        """Redirected accept(2); returns the connection fd."""
        return self.rt.syscall("accept", fd)

    def connect(self, fd: int, addr: str, port: int) -> int:
        """Redirected connect(2)."""
        return self.rt.syscall("connect", fd, addr, port)

    def send(self, fd: int, data: bytes) -> int:
        """Redirected sendto(2) of enclave-resident data."""
        buf = self.malloc(max(len(data), 1))
        try:
            self.poke(buf, data)
            return self.rt.syscall("sendto", fd, buf, len(data))
        finally:
            self.free(buf)

    def recv(self, fd: int, count: int) -> bytes:
        """Redirected recvfrom(2); returns the bytes."""
        buf = self.malloc(max(count, 1))
        try:
            got = self.rt.syscall("recvfrom", fd, buf, count)
            return self.peek(buf, got) if got else b""
        finally:
            self.free(buf)

    # -- misc ---------------------------------------------------------------------------

    def getpid(self) -> int:
        """Redirected getpid(2)."""
        return self.rt.syscall("getpid")

    def getrandom(self, count: int) -> bytes:
        """Redirected getrandom(2); returns the bytes."""
        buf = self.malloc(max(count, 1))
        try:
            got = self.rt.syscall("getrandom", buf, count)
            return self.peek(buf, got)
        finally:
            self.free(buf)

    def compute(self, cycles: int) -> None:
        """In-enclave computation (no exits unless a timer fires)."""
        self.rt.compute(cycles)

    def batch(self):
        """Start a syscall batch (one exit for many calls, section 10)."""
        return self.rt.batch()

    def enable_sidechannel_flush(self) -> None:
        """Opt in to WBINVD-on-exit (section 10 eOPF-style mitigation):
        VeilS-ENC scrubs this core's cache/TLB footprint at every
        enclave exit, trading exit latency for side-channel resistance."""
        self.rt.flush_on_exit = True

    # -- consensual enclave-to-enclave sharing (section 10) ---------------

    def grant_share(self, peer_id: int, vaddr: int,
                    num_pages: int) -> dict:
        """Grant a mutually-trusting peer enclave access to a region."""
        return self.rt.service_request({
            "op": "enc_grant_share",
            "enclave_id": self.rt.setup.enclave_id, "peer_id": peer_id,
            "vaddr": vaddr, "num_pages": num_pages})

    def accept_share(self, owner_id: int, owner_vaddr: int,
                     map_vaddr: int, num_pages: int) -> dict:
        """Map a granted region from ``owner_id`` into this enclave."""
        return self.rt.service_request({
            "op": "enc_accept_share",
            "enclave_id": self.rt.setup.enclave_id,
            "owner_id": owner_id, "owner_vaddr": owner_vaddr,
            "map_vaddr": map_vaddr, "num_pages": num_pages})

    def mprotect_enclave(self, vaddr: int, num_pages: int, *,
                         writable: bool, executable: bool) -> dict:
        """Enclave-initiated permission change (via its IDCB)."""
        return self.rt.enclave_mprotect(vaddr, num_pages,
                                        writable=writable,
                                        executable=executable)
