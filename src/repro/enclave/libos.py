"""A minimal library-OS layer over the enclave SDK (paper section 10).

The paper proposes integrating an SGX library OS (e.g. Graphene) on top
of VeilS-ENC; the porting effort is a platform-abstraction layer mapping
LibOS downcalls onto Veil's redirection primitives.  This module is that
layer's user-facing slice: POSIX-style **buffered streams** whose I/O is
batched into few enclave exits, plus a tiny process environment.

The buffering matters for performance, not just convenience: a stream
with a 4 KiB buffer turns dozens of per-byte ``write`` redirections (two
world switches each) into one.
"""

from __future__ import annotations

from ..errors import SdkError
from ..kernel.fs import (O_APPEND, O_CREAT, O_RDONLY, O_RDWR, O_TRUNC,
                         SEEK_CUR, SEEK_END, SEEK_SET)
from .sdk import EnclaveLibc

DEFAULT_BUFFER = 4096

_MODE_FLAGS = {
    "r": O_RDONLY,
    "r+": O_RDWR,
    "w": O_CREAT | O_RDWR | O_TRUNC,
    "w+": O_CREAT | O_RDWR | O_TRUNC,
    "a": O_CREAT | O_RDWR | O_APPEND,
    "a+": O_CREAT | O_RDWR | O_APPEND,
}


class EnclaveFile:
    """A buffered stream (FILE*) over a redirected file descriptor."""

    def __init__(self, libc: EnclaveLibc, fd: int, *,
                 buffer_size: int = DEFAULT_BUFFER):
        self._libc = libc
        self.fd = fd
        self.buffer_size = buffer_size
        self._write_buffer = bytearray()
        self._read_buffer = b""
        self._read_offset = 0
        self.closed = False

    # -- writing ----------------------------------------------------------

    def write(self, data: bytes) -> int:
        """Buffered write; flushes when the buffer fills."""
        self._check_open()
        # Reading leaves the descriptor ahead of the logical position;
        # a write must land at the logical position, so discard the
        # read-ahead and rewind first (C stdio leaves this undefined
        # without an intervening seek; we match BytesIO semantics).
        ahead = len(self._read_buffer) - self._read_offset
        if ahead:
            self._libc.lseek(self.fd, -ahead, SEEK_CUR)
            self._read_buffer = b""
            self._read_offset = 0
        self._write_buffer.extend(data)
        while len(self._write_buffer) >= self.buffer_size:
            chunk = bytes(self._write_buffer[:self.buffer_size])
            del self._write_buffer[:self.buffer_size]
            self._libc.write(self.fd, chunk)
        return len(data)

    def print(self, text: str) -> int:
        """fprintf-style formatted output."""
        return self.write(text.encode("utf-8"))

    def flush(self) -> None:
        """Push buffered writes to the descriptor."""
        self._check_open()
        if self._write_buffer:
            self._libc.write(self.fd, bytes(self._write_buffer))
            self._write_buffer.clear()

    # -- reading ------------------------------------------------------------

    def _fill(self) -> None:
        if self._read_offset >= len(self._read_buffer):
            self._read_buffer = self._libc.read(self.fd,
                                                self.buffer_size)
            self._read_offset = 0

    def read(self, count: int = -1) -> bytes:
        """Buffered read; ``count=-1`` reads to EOF."""
        self._check_open()
        self.flush()
        out = bytearray()
        while count < 0 or len(out) < count:
            self._fill()
            if not self._read_buffer:
                break
            available = self._read_buffer[self._read_offset:]
            take = len(available) if count < 0 else \
                min(len(available), count - len(out))
            out.extend(available[:take])
            self._read_offset += take
        return bytes(out)

    def readline(self) -> bytes:
        """Read up to and including the next newline (fgets)."""
        self._check_open()
        self.flush()
        out = bytearray()
        while True:
            self._fill()
            if not self._read_buffer:
                break
            chunk = self._read_buffer[self._read_offset:]
            newline = chunk.find(b"\n")
            if newline >= 0:
                out.extend(chunk[:newline + 1])
                self._read_offset += newline + 1
                break
            out.extend(chunk)
            self._read_offset = len(self._read_buffer)
        return bytes(out)

    # -- positioning ----------------------------------------------------------

    def seek(self, offset: int, whence: int = SEEK_SET) -> int:
        """Flush, drop read-ahead, and reposition (fseek)."""
        self._check_open()
        self.flush()
        self._read_buffer = b""
        self._read_offset = 0
        return self._libc.lseek(self.fd, offset, whence)

    def tell(self) -> int:
        """Logical position, accounting for both buffers (ftell)."""
        self._check_open()
        pending = len(self._write_buffer)
        buffered_ahead = len(self._read_buffer) - self._read_offset
        return self._libc.lseek(self.fd, 0, SEEK_CUR) + pending - \
            buffered_ahead

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Flush and close the underlying descriptor."""
        if self.closed:
            return
        self.flush()
        self._libc.close(self.fd)
        self.closed = True

    def __enter__(self) -> "EnclaveFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self.closed:
            raise SdkError("operation on closed stream")


class LibOs:
    """The LibOS facade an enclave program codes against."""

    def __init__(self, libc: EnclaveLibc):
        self.libc = libc
        self._env: dict[str, str] = {}
        self.stdout = EnclaveFile(libc, 1)
        self.stderr = EnclaveFile(libc, 2, buffer_size=1)  # unbuffered

    # -- stdio ------------------------------------------------------------

    def fopen(self, path: str, mode: str = "r", *,
              buffer_size: int = DEFAULT_BUFFER) -> EnclaveFile:
        """Open a buffered stream; modes r/r+/w/w+/a/a+."""
        flags = _MODE_FLAGS.get(mode)
        if flags is None:
            raise SdkError(f"unsupported fopen mode {mode!r}")
        fd = self.libc.open(path, flags)
        stream = EnclaveFile(self.libc, fd, buffer_size=buffer_size)
        if mode.startswith("a"):
            stream.seek(0, SEEK_END)
        return stream

    def printf(self, text: str) -> int:
        """Buffered formatted output to stdout."""
        return self.stdout.print(text)

    def fflush_all(self) -> None:
        """Flush stdout and stderr."""
        self.stdout.flush()
        self.stderr.flush()

    # -- environment -----------------------------------------------------------

    def getenv(self, name: str, default: str | None = None):
        """Look up a process-environment variable."""
        return self._env.get(name, default)

    def setenv(self, name: str, value: str) -> None:
        """Set a process-environment variable."""
        self._env[name] = value

    # -- convenience --------------------------------------------------------------

    def read_file(self, path: str) -> bytes:
        """Slurp a whole file through a buffered stream."""
        with self.fopen(path, "r") as stream:
            return stream.read()

    def write_file(self, path: str, data: bytes) -> int:
        """Write a whole file (truncating) through a stream."""
        with self.fopen(path, "w") as stream:
            return stream.write(data)
