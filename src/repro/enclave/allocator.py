"""dlmalloc-style heap allocator for enclave memory (paper section 7).

The SDK implements an internal heap allocator over the enclave's heap
region.  This is a boundary-tag allocator in the dlmalloc tradition:
each chunk carries an 8-byte header (size + in-use bit), freed chunks are
kept on a first-fit free list and coalesced with free neighbours.

All metadata lives *inside simulated enclave memory* through the accessor
functions, so allocator state enjoys (and is subject to) the same VMPL
protection as enclave data.
"""

from __future__ import annotations

import typing

from ..errors import SdkError

HEADER_BYTES = 8
MIN_CHUNK = 32
ALIGN = 16
_IN_USE = 1


class EnclaveHeap:
    """Boundary-tag allocator over ``[base, base+size)`` enclave memory.

    ``read``/``write`` are accessor callables ``(vaddr, length) -> bytes``
    and ``(vaddr, data) -> None`` bound to the enclave execution context.
    """

    def __init__(self, base: int, size: int,
                 read: typing.Callable[[int, int], bytes],
                 write: typing.Callable[[int, bytes], None]):
        if size < MIN_CHUNK * 2:
            raise SdkError("heap too small")
        self.base = base
        self.size = size
        self._read = read
        self._write = write
        # One initial free chunk spanning the whole heap.
        self._set_header(base, size, in_use=False)
        self.allocated_bytes = 0
        self.alloc_count = 0
        self.free_count = 0

    # -- header helpers (stored in enclave memory) -----------------------

    def _set_header(self, chunk: int, size: int, *, in_use: bool) -> None:
        word = (size & ~0xF) | (_IN_USE if in_use else 0)
        self._write(chunk, word.to_bytes(HEADER_BYTES, "little"))

    def _get_header(self, chunk: int) -> tuple[int, bool]:
        word = int.from_bytes(self._read(chunk, HEADER_BYTES), "little")
        return word & ~0xF, bool(word & _IN_USE)

    # -- public API ----------------------------------------------------------

    def malloc(self, nbytes: int) -> int:
        """Allocate ``nbytes``; returns the user vaddr.

        First-fit over the chunk list with splitting.  Raises
        :class:`SdkError` when the heap is exhausted (enclaves cannot grow
        their layout post-measurement).
        """
        if nbytes <= 0:
            raise SdkError("malloc of non-positive size")
        need = self._round_up(nbytes + HEADER_BYTES)
        chunk = self.base
        end = self.base + self.size
        while chunk < end:
            size, in_use = self._get_header(chunk)
            if size == 0:
                raise SdkError("heap metadata corrupted (zero chunk)")
            if not in_use and size >= need:
                self._carve(chunk, size, need)
                self.allocated_bytes += need
                self.alloc_count += 1
                return chunk + HEADER_BYTES
            chunk += size
        raise SdkError(f"enclave heap exhausted ({nbytes} bytes requested)")

    def free(self, vaddr: int) -> None:
        """Free a pointer returned by :meth:`malloc` (with coalescing)."""
        chunk = vaddr - HEADER_BYTES
        if not self.base <= chunk < self.base + self.size:
            raise SdkError(f"free of pointer outside heap: {vaddr:#x}")
        size, in_use = self._get_header(chunk)
        if not in_use:
            raise SdkError(f"double free at {vaddr:#x}")
        self._set_header(chunk, size, in_use=False)
        self.allocated_bytes -= size
        self.free_count += 1
        self._coalesce()

    def calloc(self, nbytes: int) -> int:
        """malloc + zero-fill."""
        vaddr = self.malloc(nbytes)
        self._write(vaddr, b"\x00" * nbytes)
        return vaddr

    def realloc(self, vaddr: int, nbytes: int) -> int:
        """Grow (or keep) an allocation, preserving contents."""
        chunk = vaddr - HEADER_BYTES
        size, in_use = self._get_header(chunk)
        if not in_use:
            raise SdkError("realloc of freed pointer")
        old_user = size - HEADER_BYTES
        if nbytes <= old_user:
            return vaddr
        new = self.malloc(nbytes)
        self._write(new, self._read(vaddr, old_user))
        self.free(vaddr)
        return new

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _round_up(n: int) -> int:
        n = max(n, MIN_CHUNK)
        return (n + ALIGN - 1) & ~(ALIGN - 1)

    def _carve(self, chunk: int, size: int, need: int) -> None:
        remainder = size - need
        if remainder >= MIN_CHUNK:
            self._set_header(chunk, need, in_use=True)
            self._set_header(chunk + need, remainder, in_use=False)
        else:
            self._set_header(chunk, size, in_use=True)

    def _coalesce(self) -> None:
        """Merge adjacent free chunks (single forward pass)."""
        chunk = self.base
        end = self.base + self.size
        while chunk < end:
            size, in_use = self._get_header(chunk)
            if size == 0:
                raise SdkError("heap metadata corrupted during coalesce")
            nxt = chunk + size
            if not in_use and nxt < end:
                nsize, nused = self._get_header(nxt)
                if not nused:
                    self._set_header(chunk, size + nsize, in_use=False)
                    continue          # try merging further
            chunk = nxt

    def walk(self) -> list[tuple[int, int, bool]]:
        """(vaddr, size, in_use) for every chunk -- test/debug aid."""
        out = []
        chunk = self.base
        end = self.base + self.size
        while chunk < end:
            size, in_use = self._get_header(chunk)
            if size == 0:
                break
            out.append((chunk, size, in_use))
            chunk += size
        return out
