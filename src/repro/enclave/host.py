"""The untrusted host application side of an enclave.

Models the ~200-line per-application porting effort the paper reports: the
host process opens /dev/veil, installs the self-contained binary via
ioctl, and thereafter proxies redirected syscalls while the enclave runs.
"""

from __future__ import annotations

import typing

from ..errors import SdkError
from ..kernel.fs import O_RDWR
from .binary import EnclaveBinary
from .runtime import EnclaveRuntime
from .sdk import EnclaveLibc

if typing.TYPE_CHECKING:
    from ..core.boot import VeilSystem
    from ..kernel.process import Process

VEIL_IOC_CREATE = 0x5601
VEIL_IOC_DESTROY = 0x5602


class EnclaveHost:
    """An untrusted application that hosts one enclave."""

    def __init__(self, system: "VeilSystem", binary: EnclaveBinary,
                 proc: "Process | None" = None, *, shared_pages: int = 8):
        self.system = system
        self.binary = binary
        self.proc = proc or system.kernel.create_process(
            f"host-{binary.name}")
        self.shared_pages = shared_pages
        self.runtime: EnclaveRuntime | None = None
        self.enclave_id: int | None = None
        self.measurement_hex: str | None = None

    @property
    def core(self):
        return self.system.boot_core

    def launch(self) -> EnclaveRuntime:
        """Install the binary into a new enclave (ioctl to veil.ko)."""
        if self.runtime is not None:
            raise SdkError("enclave already launched")
        kernel = self.system.kernel
        core = self.core
        fd = kernel.syscall(core, self.proc, "open", "/dev/veil", O_RDWR)
        self.enclave_id = kernel.syscall(
            core, self.proc, "ioctl", fd, VEIL_IOC_CREATE,
            {"binary": self.binary, "shared_pages": self.shared_pages})
        kernel.syscall(core, self.proc, "close", fd)
        setup = self.system.integration.enclaves[self.enclave_id]
        self.measurement_hex = setup.measurement_hex
        self.runtime = EnclaveRuntime(self.system, setup)
        return self.runtime

    def attest(self, expected_measurement_hex: str) -> None:
        """Remote-user-side check of the enclave measurement."""
        if self.measurement_hex != expected_measurement_hex:
            raise SdkError(
                "enclave measurement mismatch: "
                f"{self.measurement_hex} != {expected_measurement_hex}")

    def attest_remote(self, user) -> str:
        """Full remote attestation (section 6.2): VeilS-ENC seals the
        measurement over VeilMon's secure channel; the untrusted OS only
        relays opaque bytes.  Returns the verified measurement hex and
        raises if it does not match the user's expected binary."""
        reply = self.system.gateway.call_service(self.core, {
            "op": "enc_report_measurement",
            "enclave_id": self.enclave_id})
        payload = user.channel.receive(bytes.fromhex(
            reply["record_hex"]))
        from ..kernel import layout
        expected = self.binary.expected_measurement(layout.ENCLAVE_BASE)
        if payload["measurement_hex"] != expected:
            raise SdkError(
                "remote enclave attestation failed: "
                f"{payload['measurement_hex']} != {expected}")
        return payload["measurement_hex"]

    def run(self, entry: typing.Callable[[EnclaveLibc], typing.Any]):
        """Enter the enclave and execute ``entry(libc)`` inside it."""
        if self.runtime is None:
            self.launch()
        assert self.runtime is not None
        return self.run_on(self.runtime, entry)

    @staticmethod
    def run_on(runtime: EnclaveRuntime,
               entry: typing.Callable[[EnclaveLibc], typing.Any]):
        """Execute ``entry(libc)`` inside the enclave on ``runtime``'s
        thread (primary or spawned)."""
        runtime.enter()
        try:
            return entry(EnclaveLibc(runtime))
        finally:
            if runtime.inside:
                runtime.exit_to_untrusted()

    def spawn_thread(self, vcpu_id: int) -> EnclaveRuntime:
        """Create an additional enclave thread pinned to ``vcpu_id``
        (the section 7 multi-threading extension)."""
        if self.runtime is None:
            raise SdkError("launch the enclave before spawning threads")
        assert self.enclave_id is not None
        self.system.integration.add_enclave_thread(self.core,
                                                   self.enclave_id,
                                                   vcpu_id)
        setup = self.system.integration.enclaves[self.enclave_id]
        return EnclaveRuntime(self.system, setup, vcpu_id=vcpu_id)

    def destroy(self) -> None:
        """Tear the enclave down (service scrubs its memory)."""
        if self.enclave_id is not None and self.runtime is not None and \
                not self.runtime.killed:
            self.system.integration.destroy_enclave(self.core,
                                                    self.enclave_id)
        self.runtime = None
        self.enclave_id = None
