"""Enclave SDK: binaries, runtime, libc, heap, and syscall sanitizer."""

from .allocator import EnclaveHeap
from .binary import EnclaveBinary, build_test_binary
from .host import EnclaveHost
from .libos import EnclaveFile, LibOs
from .runtime import EnclaveRuntime
from .sanitizer import MarshalledCall, SyscallSanitizer
from .sdk import EnclaveLibc
from .specs import (ArgKind, ArgSpec, CallSpec, SYSCALL_SPECS,
                    supported_syscalls, unsupported_syscalls)

__all__ = [
    "EnclaveHeap", "EnclaveBinary", "build_test_binary", "EnclaveHost",
    "EnclaveFile", "LibOs", "EnclaveRuntime", "MarshalledCall", "SyscallSanitizer", "EnclaveLibc",
    "ArgKind", "ArgSpec", "CallSpec", "SYSCALL_SPECS",
    "supported_syscalls", "unsupported_syscalls",
]
