"""Drive a fleet through one seeded chaos schedule, then check it.

:func:`run_chaos_cluster` is the chaos analog of
:func:`~repro.cluster.fleet.run_cluster`: boot the fleet on a
fault-injecting fabric, attest (possibly against a byzantine
hypervisor), then push a closed-loop workload while the plan drops,
duplicates, delays, and corrupts messages, crashes replicas
mid-request, and injects spurious exits.  The front end is expected to
*complete* the workload through bounded retries, failover, quarantine,
and re-attestation -- not to raise.  Afterwards injection is switched
off, held messages are flushed, quarantined replicas are healed, and
the :class:`~repro.chaos.invariants.InvariantChecker` asserts the
security story survived.

Everything is deterministic: same :class:`ChaosConfig` -> same fault
schedule, same ledgers, same result.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from ..cluster.auditor import FleetAuditReport
from ..cluster.fleet import ClusterConfig, ClusterFleet, ClusterResult
from ..cluster.net import NetCostModel
from ..errors import SimulationError
from .invariants import InvariantChecker, InvariantReport
from .net import ChaoticNetwork
from .plan import FaultPlan, FaultProfile, profile_by_name

if typing.TYPE_CHECKING:
    from ..trace.tracer import Tracer


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one chaos run."""

    seed: int = 1
    profile: str = "mayhem"
    replicas: int = 3
    requests: int = 48
    workload: str = "memcached"
    policy: str = "least-outstanding"
    #: Attempt to re-admit quarantined replicas every N requests.
    heal_every: int = 8
    set_every: int = 10
    keyspace: int = 16
    net_cost: NetCostModel = field(default_factory=NetCostModel)

    def cluster_config(self) -> ClusterConfig:
        """The underlying fleet shape for this chaos run."""
        return ClusterConfig(
            replicas=self.replicas, requests=self.requests,
            workload=self.workload, policy=self.policy,
            set_every=self.set_every, keyspace=self.keyspace,
            net_cost=self.net_cost)


@dataclass
class ChaosResult:
    """Everything one chaos run produced."""

    config: ChaosConfig
    profile: FaultProfile
    completed: int
    failed: int
    retries: int
    crashes: dict[str, int]
    quarantines: int
    reattestations: int
    events: list[tuple]
    invariants: InvariantReport
    cluster: ClusterResult


def _maybe_crash(fleet: ClusterFleet, plan: FaultPlan, index: int,
                 downed: dict[str, int]) -> None:
    """Crash one eligible replica when the schedule says so.

    replica0 is exempt so the candidate set never empties -- the point
    is recovery under degradation, not proving that a fully-dead fleet
    serves nothing.
    """
    profile = plan.profile
    if not profile.crash_period or index == 0 \
            or index % profile.crash_period:
        return
    candidates = [r for r in fleet.replicas.values()
                  if r.alive and r.index != 0]
    victim = plan.pick(sorted(candidates, key=lambda r: r.index))
    if victim is None:
        return
    victim.crash()
    plan.record("crash", victim.name, index)
    downed[victim.name] = index + profile.downtime


def _maybe_restart(fleet: ClusterFleet, plan: FaultPlan, index: int,
                   downed: dict[str, int]) -> None:
    """Restart replicas whose downtime has elapsed."""
    for name in [n for n, when in downed.items() if index >= when]:
        fleet.replicas[name].restart()
        plan.record("restart", name, index)
        del downed[name]


def _maybe_spurious_exit(fleet: ClusterFleet, plan: FaultPlan,
                         index: int) -> None:
    """Byzantine hypervisor: bounce one running replica instance."""
    profile = plan.profile
    if not profile.spurious_period or index == 0 \
            or index % profile.spurious_period:
        return
    alive = sorted((r for r in fleet.replicas.values() if r.alive),
                   key=lambda r: r.index)
    victim = plan.pick(alive)
    if victim is None:
        return
    victim.machine.hypervisor.inject_spurious_exit(victim.core)
    plan.record("spurious_exit", victim.name, index)


def _request_payload(config: ChaosConfig, index: int) -> dict:
    """The same closed-loop request stream ``ClusterFleet.drive`` uses."""
    key = f"key{index % config.keyspace}"
    if config.workload == "memcached":
        op = "set" if index % config.set_every == 0 else "get"
        return {"op": op, "key": key}
    return {"op": "insert", "key": key}


def run_chaos_cluster(config: ChaosConfig | None = None, *,
                      tracer: "Tracer | None" = None,
                      scope=None) -> ChaosResult:
    """Boot, torture, recover, and verify one fleet."""
    config = config or ChaosConfig()
    profile = profile_by_name(config.profile)
    plan = FaultPlan(config.seed, profile)
    if tracer is None:
        from ..trace.tracer import default_tracer
        tracer = default_tracer()
    net = ChaoticNetwork(plan, cost=config.net_cost, tracer=tracer)
    fleet = ClusterFleet(config.cluster_config(), tracer=tracer, net=net,
                         scope=scope)

    # Byzantine mode: one victim hypervisor corrupts attestation replies
    # before the initial handshakes; the relying party must detect it.
    if profile.corrupt_attestations:
        victim = plan.pick(sorted(fleet.replicas.values(),
                                  key=lambda r: r.index))
        victim.machine.hypervisor.corrupt_ghcb_replies = \
            profile.corrupt_attestations
        plan.record("byzantine_attest", victim.name,
                    profile.corrupt_attestations)

    fleet.attest_all()
    fleet.frontend.reset_schedule()
    plan.activate()

    completed = failed = 0
    downed: dict[str, int] = {}
    for index in range(config.requests):
        _maybe_restart(fleet, plan, index, downed)
        _maybe_crash(fleet, plan, index, downed)
        _maybe_spurious_exit(fleet, plan, index)
        try:
            fleet.frontend.request(_request_payload(config, index))
            completed += 1
        except SimulationError as exhausted:
            failed += 1
            plan.record("request_failed", index, str(exhausted))
            net.tracer.metrics.count("chaos_request_failed", "frontend")
        if config.heal_every and (index + 1) % config.heal_every == 0:
            fleet.frontend.heal_quarantined()

    # Schedule over: stop injecting, bring everything back, and let the
    # front end re-admit whatever is still quarantined before the
    # invariant sweep audits the fleet.
    plan.deactivate()
    for name in list(downed):
        fleet.replicas[name].restart()
        plan.record("restart", name, config.requests)
        del downed[name]
    released = net.flush_held()
    if released:
        plan.record("flush_held", released)
    fleet.frontend.heal_quarantined()

    invariants = InvariantChecker().check(fleet, net)
    reattestations = sum(h.reattested
                         for h in fleet.frontend.health.values())
    cluster = fleet.result(invariants.audit or FleetAuditReport())
    return ChaosResult(
        config=config, profile=profile, completed=completed,
        failed=failed, retries=fleet.frontend.retries,
        crashes={name: replica.crashes
                 for name, replica in sorted(fleet.replicas.items())},
        quarantines=fleet.frontend.quarantines,
        reattestations=reattestations,
        events=list(plan.events), invariants=invariants,
        cluster=cluster)
