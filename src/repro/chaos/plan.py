"""Seeded, replayable fault schedules (veil-chaos).

A :class:`FaultPlan` is the deterministic adversary: a named
:class:`FaultProfile` (what *kinds* of faults, at what rates) plus a
seeded :class:`SplitMix64` generator (exactly *which* messages and
replicas get hit).  Because the simulator has no wall clock and every
random draw comes from the plan's own generator, re-running the same
seed + profile replays the identical fault schedule -- the ``events``
log two runs produce is byte-for-byte equal, which is what makes chaos
failures debuggable.

The plan is *inert until activated*: with ``active`` False (or no plan
at all) the chaos-wrapped fabric is pass-through and runs are
byte-identical to an unwrapped fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..hw.rng import DeterministicRandom


class SplitMix64(DeterministicRandom):
    """The plan's PRNG: :class:`~repro.hw.rng.DeterministicRandom`.

    veil-flow hoisted the generator into ``hw.rng`` as the stack-wide
    sanctioned randomness facility; this subclass keeps the chaos name
    (and the exact output stream, so pre-existing fault-schedule seeds
    replay unchanged) while narrowing the error type to the simulation
    domain.
    """

    def randrange(self, bound: int) -> int:
        """Uniform int in [0, bound)."""
        if bound <= 0:
            raise SimulationError(f"randrange bound {bound} must be > 0")
        return super().randrange(bound)


@dataclass(frozen=True)
class FaultProfile:
    """Rates and periods for one class of chaos schedule."""

    name: str
    #: Per-message probability the fabric drops it outright.
    drop: float = 0.0
    #: Per-message probability it is delivered twice.
    duplicate: float = 0.0
    #: Per-message probability it is held and re-delivered later
    #: (reordering past messages sent in the meantime).
    delay: float = 0.0
    #: Per-message probability one bit is flipped in flight.
    corrupt: float = 0.0
    #: Crash one replica every this many requests (0 = never).
    crash_period: int = 0
    #: Requests a crashed replica stays down before restarting.
    downtime: int = 3
    #: Byzantine hypervisor: corrupt this many attestation replies on
    #: one victim replica before the initial handshakes.
    corrupt_attestations: int = 0
    #: Byzantine hypervisor: inject a spurious exit on some replica
    #: every this many requests (0 = never).
    spurious_period: int = 0


#: Named schedules the CLI / CI smoke / tests select by name.
PROFILES: dict[str, FaultProfile] = {
    "drops": FaultProfile("drops", drop=0.12),
    "dup-reorder": FaultProfile("dup-reorder", duplicate=0.12,
                                delay=0.15),
    "corrupt": FaultProfile("corrupt", corrupt=0.10),
    "crash": FaultProfile("crash", crash_period=6, downtime=4),
    "byzantine": FaultProfile("byzantine", corrupt_attestations=1,
                              spurious_period=4),
    "mayhem": FaultProfile("mayhem", drop=0.06, duplicate=0.06,
                           delay=0.08, corrupt=0.05, crash_period=9,
                           downtime=3, spurious_period=7),
}


def profile_by_name(name: str) -> FaultProfile:
    """Look up a named profile (SimulationError on unknown names)."""
    try:
        return PROFILES[name]
    except KeyError:
        raise SimulationError(
            f"unknown chaos profile {name!r}; choose from "
            f"{', '.join(sorted(PROFILES))}") from None


@dataclass
class MessageFate:
    """What the fabric does with one message under the plan."""

    payload: bytes
    drop: bool = False
    copies: int = 1
    #: Sends to hold the message back before delivery (0 = deliver now).
    hold: int = 0
    corrupted: bool = False


class FaultPlan:
    """One seeded, replayable chaos schedule."""

    def __init__(self, seed: int, profile: FaultProfile | str):
        self.seed = seed
        self.profile = profile_by_name(profile) \
            if isinstance(profile, str) else profile
        self.rng = SplitMix64(seed)
        #: Injection is gated: inactive plans never consume randomness
        #: on the message path, so wrapped-but-inactive runs stay
        #: byte-identical to unwrapped ones.
        self.active = False
        #: Replayable record of every injected fault, in order.
        self.events: list[tuple] = []
        self._sequence = 0

    def activate(self) -> None:
        """Start injecting faults."""
        self.active = True

    def deactivate(self) -> None:
        """Stop injecting faults (the schedule record is kept)."""
        self.active = False

    def record(self, kind: str, *detail) -> None:
        """Append one schedule event (index, kind, detail...)."""
        self.events.append((len(self.events), kind) + tuple(detail))

    def chance(self, probability: float) -> bool:
        """One seeded Bernoulli draw."""
        return probability > 0 and self.rng.random() < probability

    def pick(self, items: list):
        """One seeded uniform choice (None from an empty list)."""
        if not items:
            return None
        return items[self.rng.randrange(len(items))]

    def fate(self, src: str, dst: str, payload: bytes) -> MessageFate:
        """Decide what happens to one fabric message."""
        index = self._sequence
        self._sequence += 1
        profile = self.profile
        if not self.active:
            return MessageFate(payload)
        if self.chance(profile.drop):
            self.record("drop", src, dst, index)
            return MessageFate(payload, drop=True)
        fate = MessageFate(payload)
        if self.chance(profile.corrupt):
            fate.payload = self._flip_bit(payload)
            fate.corrupted = True
            self.record("corrupt", src, dst, index)
        if self.chance(profile.duplicate):
            fate.copies = 2
            self.record("duplicate", src, dst, index)
        if self.chance(profile.delay):
            fate.hold = 1 + self.rng.randrange(3)
            self.record("delay", src, dst, index, fate.hold)
        return fate

    def _flip_bit(self, payload: bytes) -> bytes:
        """Flip one seeded bit (empty payloads pass through)."""
        if not payload:
            return payload
        index = self.rng.randrange(len(payload))
        bit = self.rng.randrange(8)
        flipped = bytearray(payload)
        flipped[index] ^= 1 << bit
        return bytes(flipped)
