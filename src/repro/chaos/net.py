"""A fault-injecting view of the inter-host fabric.

:class:`ChaoticNetwork` subclasses the fleet's
:class:`~repro.cluster.net.InterHostNetwork` and applies a
:class:`~repro.chaos.plan.FaultPlan` verdict to every message: deliver,
drop, duplicate, hold-and-reorder, or bit-flip.  It also *snoops* -- it
keeps the full transcript of bytes that crossed the fabric, which is
exactly what a datacenter adversary sees and what the invariant checker
scans for plaintext leaks afterwards.

With no plan (or an inactive one) every message takes the parent's
delivery path untouched, so ledgers, metrics, and traces are
byte-identical to an unwrapped fleet -- a tested invariant.
"""

from __future__ import annotations

import typing

from ..cluster.net import InterHostNetwork, NetCostModel

if typing.TYPE_CHECKING:
    from .plan import FaultPlan


class ChaoticNetwork(InterHostNetwork):
    """The untrusted fabric, with the adversary actually misbehaving."""

    def __init__(self, plan: "FaultPlan | None" = None,
                 cost: NetCostModel | None = None, tracer=None):
        super().__init__(cost=cost, tracer=tracer)
        self.plan = plan
        #: Everything that crossed the fabric: (src, dst, wire bytes).
        #: The adversary's transcript, scanned by the invariant checker.
        self.snooped: list[tuple[str, str, bytes]] = []
        #: Held (delayed) messages: (release_at_send_index, src, dst,
        #: payload), re-delivered once enough later sends have passed.
        self._held: list[tuple[int, str, str, bytes]] = []
        self._send_index = 0

    def send(self, src: str, dst: str, payload: bytes) -> None:
        """Deliver one message, subject to the plan's verdict."""
        self.snooped.append((src, dst, bytes(payload)))
        self._send_index += 1
        if self.plan is None or not self.plan.active:
            super().send(src, dst, payload)
            self._release()
            return
        fate = self.plan.fate(src, dst, payload)
        link = f"{src}->{dst}"
        if fate.drop:
            # The sender's NIC did the work; the receiver never hears.
            self.endpoint(src).ledger.charge(
                "net", self.cost.message_cost(len(payload)))
            self.tracer.metrics.count("chaos_drop", link)
            if self.scope.enabled:
                self.scope.on_fault("drop", link)
            self._release()
            return
        if fate.corrupted:
            self.tracer.metrics.count("chaos_corrupt", link)
            if self.scope.enabled:
                self.scope.on_fault("corrupt", link)
        if fate.hold:
            self._held.append((self._send_index + fate.hold, src, dst,
                               fate.payload))
            self.tracer.metrics.count("chaos_delay", link)
            if self.scope.enabled:
                self.scope.on_fault("delay", link,
                                    detail=f"hold={fate.hold}")
            self._release()
            return
        if fate.copies > 1:
            self.tracer.metrics.count("chaos_dup", link)
            if self.scope.enabled:
                self.scope.on_fault("dup", link,
                                    detail=f"copies={fate.copies}")
        for _copy in range(fate.copies):
            super().send(src, dst, fate.payload)
        self._release()

    def _release(self) -> None:
        """Deliver held messages whose hold-back window has passed."""
        if not self._held:
            return
        due = [held for held in self._held
               if held[0] <= self._send_index]
        if not due:
            return
        self._held = [held for held in self._held
                      if held[0] > self._send_index]
        for _at, src, dst, payload in due:
            super().send(src, dst, payload)

    def flush_held(self) -> int:
        """Deliver every still-held message now (end of a schedule).

        Returns how many were released.  Run before the recovery /
        audit phase so "delayed" never silently becomes "dropped".
        """
        held, self._held = self._held, []
        for _at, src, dst, payload in held:
            super().send(src, dst, payload)
        return len(held)
