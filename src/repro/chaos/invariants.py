"""End-of-schedule invariant checking for chaos runs.

After a fault schedule finishes, three things must still be true no
matter what the adversary did to the fabric or the hypervisor:

1. **No plaintext crossed the fabric.**  The snooped transcript is
   scanned for request/response field markers.  The markers exploit a
   serialization asymmetry: sealed payloads are JSON-encoded with
   spaced separators (``"op": ``) *before* encryption, while the clear
   routing envelopes use compact separators (``"op":``) -- so a spaced
   marker can only appear on the wire if a to-be-sealed payload leaked
   unencrypted.
2. **No unattested replica served traffic.**  Every replica that
   executed a request must have been admitted through the relying-party
   handshake, and no tampered-image replica may ever have been
   admitted.
3. **The audit chain still verifies** (or the sweep detected the
   tampering).  Recovery must not have forked, duplicated, or lost
   audit records: the fleet-wide sweep re-pulls every admitted
   replica's log over the attested control channels and recomputes the
   MAC chain.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from ..cluster.auditor import FleetAuditReport
from ..errors import SecurityViolation

if typing.TYPE_CHECKING:
    from ..cluster.fleet import ClusterFleet
    from .net import ChaoticNetwork

#: Field markers that only occur in *pre-seal* payload serializations
#: (spaced JSON separators); the clear envelopes are compact-encoded.
PLAINTEXT_MARKERS: tuple[bytes, ...] = (
    b'"op": ', b'"key": ', b'"request_id": ', b'"logs": ',
    b'"chain_hex": ')


@dataclass
class InvariantReport:
    """Outcome of one post-schedule invariant sweep."""

    violations: list[str] = field(default_factory=list)
    messages_scanned: int = 0
    audit_verified: bool = False
    tampering_detected: bool = False
    detection_reason: str = ""
    audit: FleetAuditReport | None = None

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.violations


class InvariantChecker:
    """Asserts the fleet's security story survived the schedule."""

    def check(self, fleet: "ClusterFleet",
              net: "ChaoticNetwork") -> InvariantReport:
        """Run all three invariants; violations land in the report.

        Call with fault injection deactivated (and held messages
        flushed): the sweep itself must observe the fleet, not fight
        the adversary.
        """
        report = InvariantReport()
        self._check_no_plaintext(net, report)
        self._check_only_attested_served(fleet, report)
        self._check_audit_chain(fleet, report)
        return report

    def _check_no_plaintext(self, net: "ChaoticNetwork",
                            report: InvariantReport) -> None:
        for src, dst, wire in net.snooped:
            report.messages_scanned += 1
            for marker in PLAINTEXT_MARKERS:
                if marker in wire:
                    report.violations.append(
                        f"plaintext marker {marker!r} crossed the "
                        f"fabric on {src}->{dst}")
                    break

    def _check_only_attested_served(self, fleet: "ClusterFleet",
                                    report: InvariantReport) -> None:
        admitted = fleet.frontend.ever_admitted
        for name, replica in fleet.replicas.items():
            if replica.requests_served > 0 and name not in admitted:
                report.violations.append(
                    f"unattested replica {name} served "
                    f"{replica.requests_served} requests")
            if replica.tampered and name in admitted:
                report.violations.append(
                    f"tampered replica {name} was admitted to the "
                    "routing set")

    def _check_audit_chain(self, fleet: "ClusterFleet",
                           report: InvariantReport) -> None:
        try:
            audit = fleet.audit_all()
        except SecurityViolation as detected:
            # A failed sweep IS detection: the chain check refused to
            # vouch for records the adversary touched.
            report.tampering_detected = True
            report.detection_reason = str(detected)
            return
        report.audit = audit
        report.audit_verified = audit.all_verified
        if not audit.all_verified:
            report.violations.append(
                "audit sweep returned unverified chains without "
                "raising")
