"""veil-chaos: deterministic fault injection + recovery for the fleet.

The fleet's threat model says the datacenter fabric and the hypervisor
are untrusted; this package makes them *actively hostile* -- under a
seeded, replayable schedule -- and checks that the security and
liveness story survives:

* :mod:`~repro.chaos.plan` -- named fault profiles and the seeded
  :class:`FaultPlan` (SplitMix64 PRNG, replayable event log);
* :mod:`~repro.chaos.net` -- :class:`ChaoticNetwork`, the fabric that
  drops / duplicates / delays / bit-flips messages and snoops the full
  transcript;
* :mod:`~repro.chaos.invariants` -- the post-schedule checker: no
  plaintext on the wire, no unattested replica served, audit chain
  verifies or tampering was detected;
* :mod:`~repro.chaos.runner` -- :func:`run_chaos_cluster`, one seeded
  boot-torture-recover-verify cycle (the ``repro chaos`` CLI command).

Injection is strictly outside-in: nothing in the production stack
imports chaos (enforced by veil-lint's layering rule), and with the
plan inactive a chaos-wrapped fleet is byte-identical to a plain one.
"""

from .invariants import (PLAINTEXT_MARKERS, InvariantChecker,
                         InvariantReport)
from .net import ChaoticNetwork
from .plan import (PROFILES, FaultPlan, FaultProfile, MessageFate,
                   SplitMix64, profile_by_name)
from .runner import ChaosConfig, ChaosResult, run_chaos_cluster

__all__ = [
    "PLAINTEXT_MARKERS", "InvariantChecker", "InvariantReport",
    "ChaoticNetwork",
    "PROFILES", "FaultPlan", "FaultProfile", "MessageFate",
    "SplitMix64", "profile_by_name",
    "ChaosConfig", "ChaosResult", "run_chaos_cluster",
]
