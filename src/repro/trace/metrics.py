"""Counters and cycle histograms aggregated from the trace stream.

Where the ring buffer in :mod:`repro.trace.tracer` keeps the *recent*
event tail, the metrics registry keeps *lossless aggregates* for the
whole run: how many times each syscall dispatched, the cycle
distribution of each service operation, how often each domain-switch
pair (``DomUNT->DomMON`` etc.) occurred.  Benchmarks read these instead
of hand-diffing ledger snapshots, and the registry dump is part of the
byte-identical determinism contract.
"""

from __future__ import annotations

from collections import Counter


class CycleHistogram:
    """Power-of-two bucketed distribution of cycle observations.

    Buckets are ``bit_length`` of the observation, so bucket ``b`` holds
    values in ``[2**(b-1), 2**b)`` (bucket 0 holds exactly zero).  A
    handful of integer buckets is enough to tell a 3k-cycle VMGEXIT from
    a 7k-cycle full switch without storing every sample.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0
        self.min = 0
        self.max = 0
        self.buckets: Counter[int] = Counter()

    def observe(self, cycles: int) -> None:
        """Record one observation of ``cycles``."""
        if self.count == 0:
            self.min = cycles
            self.max = cycles
        else:
            if cycles < self.min:
                self.min = cycles
            if cycles > self.max:
                self.max = cycles
        self.count += 1
        self.total += cycles
        self.buckets[cycles.bit_length()] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "CycleHistogram") -> None:
        """Fold ``other``'s observations into this histogram in place.

        Equivalent to replaying every observation ``other`` recorded:
        counts, totals, and buckets add; min/max widen.  veil-warp uses
        this to fold per-worker registries into one fleet registry.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.min = other.min
            self.max = other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total
        self.buckets.update(other.buckets)

    def as_dict(self) -> dict:
        """Deterministic plain-data form for export/dumps."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 3),
            "buckets": {str(b): n for b, n in sorted(self.buckets.items())},
        }


#: Sub-bucket precision of :class:`LatencyHistogram`: every recorded
#: value keeps its top ``LATENCY_SUB_BITS + 1`` significant bits, so the
#: quantization error is bounded below ``2**-LATENCY_SUB_BITS`` (< 0.4%)
#: and every value smaller than ``2**(LATENCY_SUB_BITS + 1)`` is exact.
LATENCY_SUB_BITS = 8

#: Default saturation point (cycles).  2**48 cycles is ~26 hours of
#: simulated time at the 3 GHz nominal clock -- far beyond any run.
LATENCY_MAX_VALUE = 1 << 48


class LatencyHistogram:
    """Fixed-bucket HDR-style distribution with exact-rank percentiles.

    Where :class:`CycleHistogram` keeps a coarse power-of-two profile,
    this records enough resolution to answer p50/p95/p99 queries the way
    a sorted sample would: the value range is covered by logarithmic
    buckets each split into ``2**LATENCY_SUB_BITS`` linear sub-buckets
    (the HdrHistogram layout), so bucket membership loses at most the
    bits below the top ``LATENCY_SUB_BITS + 1`` -- values up to
    ``2**(LATENCY_SUB_BITS + 1)`` are recorded exactly, larger ones with
    relative error below ``2**-LATENCY_SUB_BITS``.  Storage is a sparse
    Counter over bucket indices, so memory is bounded by the number of
    *distinct* quantized values, never the observation count.

    Percentiles use the nearest-rank definition: ``percentile(p)`` over
    ``n`` observations is the value at sorted index
    ``ceil(p/100 * n) - 1``, reported as the lowest value mapping to the
    matched bucket.  Values above ``max_value`` saturate into a
    dedicated overflow bucket (counted in :attr:`overflow`) and report
    as ``max_value`` so a runaway outlier can never silently vanish.
    """

    __slots__ = ("count", "total", "min", "max", "overflow",
                 "max_value", "buckets")

    def __init__(self, max_value: int = LATENCY_MAX_VALUE):
        self.count = 0
        self.total = 0
        self.min = 0
        self.max = 0
        #: Observations that exceeded ``max_value`` (also in ``count``).
        self.overflow = 0
        self.max_value = max_value
        self.buckets: Counter[int] = Counter()

    @staticmethod
    def _index(value: int) -> int:
        """Bucket index: (shift, top bits) packed into one integer."""
        shift = value.bit_length() - (LATENCY_SUB_BITS + 1)
        if shift <= 0:
            return value
        return (shift << (LATENCY_SUB_BITS + 1)) | (value >> shift)

    @staticmethod
    def _value(index: int) -> int:
        """Lowest value mapping to bucket ``index`` (inverse of _index)."""
        shift = index >> (LATENCY_SUB_BITS + 1)
        if shift == 0:
            return index
        return (index & ((1 << (LATENCY_SUB_BITS + 1)) - 1)) << shift

    def observe(self, cycles: int) -> None:
        """Record one observation of ``cycles`` (negatives clamp to 0)."""
        if cycles < 0:
            cycles = 0
        if self.count == 0:
            self.min = cycles
            self.max = cycles
        else:
            if cycles < self.min:
                self.min = cycles
            if cycles > self.max:
                self.max = cycles
        self.count += 1
        self.total += cycles
        if cycles > self.max_value:
            self.overflow += 1
            cycles = self.max_value
        self.buckets[self._index(cycles)] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Nearest-rank percentile ``p`` in ``[0, 100]`` (0 when empty)."""
        if self.count == 0:
            return 0
        if p <= 0:
            rank = 1
        else:
            # ceil(p/100 * n), in exact integer math for integral p.
            if float(p).is_integer():
                rank = -((-int(p) * self.count) // 100)
            else:
                rank = -int(-p * self.count // 100)
            rank = min(max(rank, 1), self.count)
        seen = 0
        floor = min(self.min, self.max_value)
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                # A bucket's reported value is its *floor*, which for a
                # quantized sample can dip below the smallest value ever
                # observed (e.g. a single 1001-cycle sample reports its
                # 1000-cycle bucket floor).  Clamp into the observed
                # range; ``min`` itself saturates at ``max_value`` so
                # overflow samples still report the saturation point.
                return max(self._value(index), floor)
        return max(self._value(max(self.buckets)), floor)  # pragma: no cover

    def percentiles(self, points=(50, 95, 99)) -> dict:
        """``{"p50": ..., "p95": ..., "p99": ...}`` for ``points``."""
        return {f"p{point:g}": self.percentile(point) for point in points}

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s observations into this histogram in place.

        Bucket layouts are position-independent, so merging is exact:
        the result equals observing every sample in either order (the
        quantization happened at observe time).  ``max_value`` must
        match -- saturation points differ otherwise.
        """
        if other.max_value != self.max_value:
            raise ValueError("cannot merge latency histograms with "
                             "different max_value saturation points")
        if other.count == 0:
            return
        if self.count == 0:
            self.min = other.min
            self.max = other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total
        self.overflow += other.overflow
        self.buckets.update(other.buckets)

    def as_dict(self) -> dict:
        """Deterministic plain-data form for export/dumps."""
        out = {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 3),
            "overflow": self.overflow,
        }
        out.update(self.percentiles())
        return out


class MetricsRegistry:
    """Named counters plus per-key cycle histograms.

    Counters are namespaced ``name/key`` (e.g. ``syscall/open``,
    ``switch/DomUNT->DomMON``); histograms use the same addressing.  The
    tracer feeds ``span`` counts and ``cycles`` histograms automatically
    on every span close; instrumented layers add their own domain
    counters (``vmgexit``, ``syscall``, ``service``, ``switch``).
    """

    def __init__(self):
        self.counters: Counter[str] = Counter()
        self.histograms: dict[str, CycleHistogram] = {}
        self.latencies: dict[str, LatencyHistogram] = {}

    def count(self, name: str, key: str | None = None, n: int = 1) -> None:
        """Increment counter ``name`` (or ``name/key``) by ``n``."""
        self.counters[name if key is None else f"{name}/{key}"] += n

    def observe(self, name: str, key: str, cycles: int) -> None:
        """Record ``cycles`` into histogram ``name/key``."""
        full = f"{name}/{key}"
        hist = self.histograms.get(full)
        if hist is None:
            hist = self.histograms[full] = CycleHistogram()
        hist.observe(cycles)

    def record_latency(self, name: str, key: str, cycles: int) -> None:
        """Record ``cycles`` into the percentile-grade ``name/key``
        latency histogram (veil-scope request telemetry)."""
        full = f"{name}/{key}"
        hist = self.latencies.get(full)
        if hist is None:
            hist = self.latencies[full] = LatencyHistogram()
        hist.observe(cycles)

    def counter(self, name: str, key: str | None = None) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self.counters[name if key is None else f"{name}/{key}"]

    def histogram(self, name: str, key: str) -> CycleHistogram | None:
        """The histogram at ``name/key``, or None if never observed."""
        return self.histograms.get(f"{name}/{key}")

    def latency(self, name: str, key: str) -> LatencyHistogram | None:
        """The latency histogram at ``name/key``, or None."""
        return self.latencies.get(f"{name}/{key}")

    def latencies_named(self, name: str) -> dict:
        """All ``name/<key>`` latency histograms, keyed by ``<key>``."""
        prefix = f"{name}/"
        return {k[len(prefix):]: v for k, v in
                sorted(self.latencies.items()) if k.startswith(prefix)}

    def counters_named(self, name: str) -> dict[str, int]:
        """All ``name/<key>`` counters, keyed by ``<key>``."""
        prefix = f"{name}/"
        return {k[len(prefix):]: v for k, v in self.counters.items()
                if k.startswith(prefix)}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one in place (veil-warp).

        Counters key-sum; histograms merge per key (created here on
        first sight).  Order-independent: folding worker registries in
        any order yields the same aggregate, which is what keeps the
        merged fleet dump identical across worker counts.
        """
        self.counters.update(other.counters)
        for key, hist in other.histograms.items():
            mine = self.histograms.get(key)
            if mine is None:
                mine = self.histograms[key] = CycleHistogram()
            mine.merge(hist)
        for key, hist in other.latencies.items():
            mine = self.latencies.get(key)
            if mine is None:
                mine = self.latencies[key] = LatencyHistogram(
                    max_value=hist.max_value)
            mine.merge(hist)

    def dump(self) -> dict:
        """Deterministic plain-data snapshot of the whole registry."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {k: self.histograms[k].as_dict()
                           for k in sorted(self.histograms)},
            "latency": {k: self.latencies[k].as_dict()
                        for k in sorted(self.latencies)},
        }


class NullMetrics:
    """No-op registry used by the :class:`~repro.trace.NullTracer`."""

    counters: Counter = Counter()
    histograms: dict = {}
    latencies: dict = {}

    def count(self, name, key=None, n=1) -> None:
        """No-op (tracing disabled)."""

    def observe(self, name, key, cycles) -> None:
        """No-op (tracing disabled)."""

    def record_latency(self, name, key, cycles) -> None:
        """No-op (tracing disabled)."""

    def counter(self, name, key=None) -> int:
        """Always zero."""
        return 0

    def histogram(self, name, key):
        """Always None."""
        return None

    def latency(self, name, key):
        """Always None."""
        return None

    def latencies_named(self, name) -> dict:
        """Always empty."""
        return {}

    def counters_named(self, name) -> dict:
        """Always empty."""
        return {}

    def dump(self) -> dict:
        """The empty registry snapshot."""
        return {"counters": {}, "histograms": {}, "latency": {}}


#: Process-wide shared no-op registry.
NULL_METRICS = NullMetrics()
