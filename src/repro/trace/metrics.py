"""Counters and cycle histograms aggregated from the trace stream.

Where the ring buffer in :mod:`repro.trace.tracer` keeps the *recent*
event tail, the metrics registry keeps *lossless aggregates* for the
whole run: how many times each syscall dispatched, the cycle
distribution of each service operation, how often each domain-switch
pair (``DomUNT->DomMON`` etc.) occurred.  Benchmarks read these instead
of hand-diffing ledger snapshots, and the registry dump is part of the
byte-identical determinism contract.
"""

from __future__ import annotations

from collections import Counter


class CycleHistogram:
    """Power-of-two bucketed distribution of cycle observations.

    Buckets are ``bit_length`` of the observation, so bucket ``b`` holds
    values in ``[2**(b-1), 2**b)`` (bucket 0 holds exactly zero).  A
    handful of integer buckets is enough to tell a 3k-cycle VMGEXIT from
    a 7k-cycle full switch without storing every sample.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0
        self.min = 0
        self.max = 0
        self.buckets: Counter[int] = Counter()

    def observe(self, cycles: int) -> None:
        """Record one observation of ``cycles``."""
        if self.count == 0:
            self.min = cycles
            self.max = cycles
        else:
            if cycles < self.min:
                self.min = cycles
            if cycles > self.max:
                self.max = cycles
        self.count += 1
        self.total += cycles
        self.buckets[cycles.bit_length()] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """Deterministic plain-data form for export/dumps."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 3),
            "buckets": {str(b): n for b, n in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Named counters plus per-key cycle histograms.

    Counters are namespaced ``name/key`` (e.g. ``syscall/open``,
    ``switch/DomUNT->DomMON``); histograms use the same addressing.  The
    tracer feeds ``span`` counts and ``cycles`` histograms automatically
    on every span close; instrumented layers add their own domain
    counters (``vmgexit``, ``syscall``, ``service``, ``switch``).
    """

    def __init__(self):
        self.counters: Counter[str] = Counter()
        self.histograms: dict[str, CycleHistogram] = {}

    def count(self, name: str, key: str | None = None, n: int = 1) -> None:
        """Increment counter ``name`` (or ``name/key``) by ``n``."""
        self.counters[name if key is None else f"{name}/{key}"] += n

    def observe(self, name: str, key: str, cycles: int) -> None:
        """Record ``cycles`` into histogram ``name/key``."""
        full = f"{name}/{key}"
        hist = self.histograms.get(full)
        if hist is None:
            hist = self.histograms[full] = CycleHistogram()
        hist.observe(cycles)

    def counter(self, name: str, key: str | None = None) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self.counters[name if key is None else f"{name}/{key}"]

    def histogram(self, name: str, key: str) -> CycleHistogram | None:
        """The histogram at ``name/key``, or None if never observed."""
        return self.histograms.get(f"{name}/{key}")

    def counters_named(self, name: str) -> dict[str, int]:
        """All ``name/<key>`` counters, keyed by ``<key>``."""
        prefix = f"{name}/"
        return {k[len(prefix):]: v for k, v in self.counters.items()
                if k.startswith(prefix)}

    def dump(self) -> dict:
        """Deterministic plain-data snapshot of the whole registry."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {k: self.histograms[k].as_dict()
                           for k in sorted(self.histograms)},
        }


class NullMetrics:
    """No-op registry used by the :class:`~repro.trace.NullTracer`."""

    counters: Counter = Counter()
    histograms: dict = {}

    def count(self, name, key=None, n=1) -> None:
        """No-op (tracing disabled)."""

    def observe(self, name, key, cycles) -> None:
        """No-op (tracing disabled)."""

    def counter(self, name, key=None) -> int:
        """Always zero."""
        return 0

    def histogram(self, name, key):
        """Always None."""
        return None

    def counters_named(self, name) -> dict:
        """Always empty."""
        return {}

    def dump(self) -> dict:
        """The empty registry snapshot."""
        return {"counters": {}, "histograms": {}}


#: Process-wide shared no-op registry.
NULL_METRICS = NullMetrics()
