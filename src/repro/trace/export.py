"""Exporters: Chrome trace-event JSON, validator, and text summary.

The JSON exporter emits the Chrome trace-event format (the "JSON Object
Format" with a top-level ``traceEvents`` array) that both Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` load directly.  Track
layout mirrors the simulator's attribution model: one *process* per
virtual CPU and one *thread* per VMPL, so a domain switch reads as
activity hopping between the DomUNT / DomMON / DomSER / DomENC tracks
of the same core.

Timestamps: the format's ``ts``/``dur`` unit is nominally microseconds;
we write raw virtual **cycles** (1 "us" == 1 cycle).  Durations shown in
the viewer are therefore cycle counts — exactly the quantity the paper's
evaluation reports — and remain integers, which keeps exports
byte-identical across runs.
"""

from __future__ import annotations

import json

from .tracer import PHASE_INSTANT, PHASE_SPAN, Tracer

#: Display names for the VMPL tracks (Veil's domain naming).
VMPL_TRACK_NAMES = {
    0: "VMPL0 DomMON",
    1: "VMPL1 DomSER",
    2: "VMPL2 DomENC",
    3: "VMPL3 DomUNT",
}

#: pid/tid used for events with no core / VMPL attribution.
UNATTRIBUTED_TRACK = 99


def _track(value: int) -> int:
    """Map an attribution value onto a non-negative pid/tid."""
    return UNATTRIBUTED_TRACK if value < 0 else value


def chrome_trace(tracer: Tracer) -> dict:
    """Render the tracer's ring buffer as a Chrome trace-event object."""
    events: list[dict] = []
    tracks: set[tuple[int, int]] = set()
    for event in tracer.events:
        tracks.add((_track(event.vcpu), _track(event.vmpl)))

    # Metadata events first: name each (vcpu, VMPL) track.
    for vcpu in sorted({pid for pid, _ in tracks}):
        name = ("unattributed" if vcpu == UNATTRIBUTED_TRACK
                else f"vcpu{vcpu}")
        events.append({"ph": "M", "name": "process_name", "pid": vcpu,
                       "tid": 0, "args": {"name": name}})
    for vcpu, vmpl in sorted(tracks):
        name = VMPL_TRACK_NAMES.get(vmpl, "unattributed")
        events.append({"ph": "M", "name": "thread_name", "pid": vcpu,
                       "tid": vmpl, "args": {"name": name}})

    for event in tracer.events:
        record = {
            "ph": event.phase,
            "cat": event.category,
            "name": event.name,
            "pid": _track(event.vcpu),
            "tid": _track(event.vmpl),
            "ts": event.ts,
            "args": event.args_dict(),
        }
        if event.phase == PHASE_SPAN:
            record["dur"] = event.dur
        elif event.phase == PHASE_INSTANT:
            record["s"] = "t"          # thread-scoped instant
        if event.pid >= 0:
            record["args"]["pid"] = event.pid
        events.append(record)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "virtual-cycles",
            "dropped_events": tracer.dropped,
            "recorded_events": tracer.recorded,
            "metrics": tracer.metrics.dump(),
        },
    }


def dumps_chrome_trace(tracer: Tracer) -> str:
    """Serialize deterministically (sorted keys, no whitespace)."""
    return json.dumps(chrome_trace(tracer), sort_keys=True,
                      separators=(",", ":"))


def write_chrome_trace(tracer: Tracer, path) -> None:
    """Write the Chrome trace-event JSON for ``tracer`` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_chrome_trace(tracer))
        fh.write("\n")


def validate_chrome_trace(obj) -> list[str]:
    """Check ``obj`` against the Chrome trace-event schema.

    Returns a list of problems (empty when valid).  This is the subset
    of the format the exporter produces — object form with
    ``traceEvents``, each event carrying well-typed ``ph``/``name``/
    ``pid``/``tid``/``ts`` and a ``dur`` on complete events.
    """
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            problems.append(f"{where}: missing 'ph'")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: missing integer '{field}'")
        if phase == "M":
            continue                   # metadata carries no timestamp
        if not isinstance(event.get("ts"), int):
            problems.append(f"{where}: missing integer 'ts'")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(
                    f"{where}: complete event needs integer 'dur' >= 0")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: 'args' must be an object")
    return problems


def render_summary(tracer: Tracer, top: int = 10) -> str:
    """Human-readable per-operation summary (top-N by total cycles)."""
    rows = []
    for key in tracer.metrics.histograms:
        name, _, op = key.partition("/")
        if name != "cycles":
            continue
        hist = tracer.metrics.histograms[key]
        rows.append((hist.total, op, hist))
    rows.sort(key=lambda r: (-r[0], r[1]))

    lines = [
        "veil-trace summary",
        f"  events recorded: {tracer.recorded:,} "
        f"(buffered {len(tracer.events):,}, dropped {tracer.dropped:,})",
        "",
        f"  {'span':<28} {'count':>8} {'total cyc':>14} "
        f"{'mean cyc':>12} {'max cyc':>10}",
    ]
    for total, op, hist in rows[:top]:
        lines.append(f"  {op:<28} {hist.count:>8,} {total:>14,} "
                     f"{hist.mean:>12,.1f} {hist.max:>10,}")
    if len(rows) > top:
        lines.append(f"  ... and {len(rows) - top} more span kinds")

    switches = tracer.metrics.counters_named("switch")
    if switches:
        lines.append("")
        lines.append(f"  {'domain switch':<28} {'count':>8}")
        for pair in sorted(switches):
            lines.append(f"  {pair:<28} {switches[pair]:>8,}")

    # Software-TLB counters (veil-turbo), present when the machine
    # published them after the run (the CLI does this post-export so the
    # Chrome trace stays identical across VEIL_TLB modes).
    tlb = tracer.metrics.counters_named("tlb")
    if tlb:
        lines.append("")
        lines.append(f"  {'software TLB':<28} {'count':>8}")
        for name in sorted(tlb):
            lines.append(f"  {name:<28} {tlb[name]:>8,}")
        hits, misses = tlb.get("hits", 0), tlb.get("misses", 0)
        if hits + misses:
            lines.append(f"  {'(translation hit rate)':<28} "
                         f"{hits / (hits + misses):>8.1%}")
        rhits = tlb.get("rmp_hits", 0)
        rmisses = tlb.get("rmp_misses", 0)
        if rhits + rmisses:
            lines.append(f"  {'(rmp verdict hit rate)':<28} "
                         f"{rhits / (rhits + rmisses):>8.1%}")
    return "\n".join(lines)
