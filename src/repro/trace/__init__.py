"""veil-trace: deterministic cross-layer span tracing for the simulator.

Public surface:

- :class:`Tracer` / :class:`NullTracer` — the recorder and its no-op
  twin; machines default to :data:`NULL_TRACER`.
- :class:`MetricsRegistry` — lossless counters + cycle histograms fed by
  every span close.
- :func:`chrome_trace` / :func:`write_chrome_trace` — Perfetto-loadable
  Chrome trace-event export; :func:`validate_chrome_trace` checks it.
- :func:`render_summary` — text top-N report.
- :func:`set_default_tracer` — process-wide default for harness-booted
  machines (used by the ``VEIL_TRACE_DIR`` benchmark fixture).

See ``docs/OBSERVABILITY.md`` for the span taxonomy and usage.
"""

from .export import (chrome_trace, dumps_chrome_trace, render_summary,
                     validate_chrome_trace, write_chrome_trace)
from .metrics import (LATENCY_SUB_BITS, NULL_METRICS, CycleHistogram,
                      LatencyHistogram, MetricsRegistry, NullMetrics)
from .tracer import (DEFAULT_CAPACITY, NULL_SPAN, NULL_TRACER, UNATTRIBUTED,
                     NullTracer, TraceEvent, Tracer, default_tracer,
                     set_default_tracer)

__all__ = [
    "Tracer", "NullTracer", "TraceEvent", "NULL_SPAN", "NULL_TRACER",
    "UNATTRIBUTED", "DEFAULT_CAPACITY", "default_tracer",
    "set_default_tracer",
    "MetricsRegistry", "CycleHistogram", "LatencyHistogram",
    "LATENCY_SUB_BITS", "NullMetrics", "NULL_METRICS",
    "chrome_trace", "dumps_chrome_trace", "write_chrome_trace",
    "validate_chrome_trace", "render_summary",
]
