"""Cycle-clocked span tracing over a bounded ring buffer.

The tracer is the observability backbone of the simulator: every layer
(hardware, hypervisor, kernel, monitor, services, enclave SDK) opens
*spans* around its load-bearing operations and emits *instant* events at
point occurrences (automatic exits, audit appends, #NPFs).  Three design
rules keep it faithful to the rest of the reproduction:

1. **Virtual clock.**  Timestamps come from the machine's
   :class:`~repro.hw.cycles.CycleLedger`, never from wall time, so two
   identical runs produce *byte-identical* traces (a tested invariant)
   and span durations are exactly the cycles the paper's evaluation
   attributes (e.g. the 7135-cycle domain switch).
2. **Zero perturbation.**  Recording charges nothing to the ledger:
   tracing is an instrument, not a workload.  Cycle totals are identical
   with tracing on or off.
3. **Bounded memory.**  Events live in a fixed-capacity ring
   (:data:`DEFAULT_CAPACITY`); old events are dropped (and counted), so
   arbitrarily long benchmark runs cannot accumulate memory without
   bound.  The :class:`NullTracer` keeps the disabled path at near-zero
   overhead.
"""

from __future__ import annotations

import typing
from collections import deque
from dataclasses import dataclass

from .metrics import NULL_METRICS, MetricsRegistry

#: Default ring capacity (events).  Big enough to hold the interesting
#: tail of any benchmark; small enough that a tracer is always cheap.
DEFAULT_CAPACITY = 65_536

#: Chrome trace-event phase codes used by this tracer.
PHASE_SPAN = "X"          # complete event (begin + duration)
PHASE_INSTANT = "i"       # point event

#: Attribution value meaning "not attributable" (no core / no instance).
UNATTRIBUTED = -1


@dataclass(frozen=True)
class TraceEvent:
    """One recorded span or instant, timestamped in virtual cycles."""

    phase: str             # PHASE_SPAN or PHASE_INSTANT
    category: str          # layer taxonomy: "hw", "hv", "syscall", ...
    name: str              # operation name ("VMGEXIT", "open", ...)
    ts: int                # begin cycles (ledger total at open)
    dur: int               # span duration in cycles (0 for instants)
    vcpu: int              # physical core index, or UNATTRIBUTED
    vmpl: int              # VMPL at open, or UNATTRIBUTED
    pid: int               # guest process id, or UNATTRIBUTED
    seq: int               # monotonic record sequence number
    args: tuple = ()       # sorted (key, value) pairs of structured args

    @property
    def end(self) -> int:
        """Cycle timestamp at which the span closed."""
        return self.ts + self.dur

    def args_dict(self) -> dict:
        """Structured args as a plain dict."""
        return dict(self.args)


def _coerce_value(value):
    """Coerce one span-arg value into a JSON-exportable form.

    Coercion happens at *record* time so a bad arg surfaces at the
    offending span, not hundreds of events later at export: primitives
    pass through, bytes become hex, containers recurse, and anything
    else is captured as ``repr()`` (callers owe a deterministic repr —
    the byte-identical-trace parity tests catch one that isn't).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    if isinstance(value, (tuple, list)):
        return [_coerce_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _coerce_value(v) for k, v in value.items()}
    return repr(value)


def _freeze_args(args) -> tuple:
    """Normalize caller args into a deterministic sorted tuple.

    Values are coerced (:func:`_coerce_value`) here rather than at
    export, so every recorded :class:`TraceEvent` is serializable by
    construction.
    """
    if not args:
        return ()
    return tuple(sorted((str(k), _coerce_value(v)) for k, v in args.items()))


class _Span:
    """Context manager recording one complete ("X") event on exit.

    Spans close even when the body raises (e.g. a fail-stop
    :class:`~repro.errors.CvmHalted`), so traces stay balanced across
    the attack suite's halt paths.
    """

    __slots__ = ("_tracer", "_category", "_name", "_vcpu", "_vmpl",
                 "_pid", "_args", "_begin")

    def __init__(self, tracer: "Tracer", category: str, name: str,
                 vcpu: int, vmpl: int, pid: int, args):
        self._tracer = tracer
        self._category = category
        self._name = name
        self._vcpu = vcpu
        self._vmpl = vmpl
        self._pid = pid
        self._args = args
        self._begin = 0

    def __enter__(self) -> "_Span":
        self._begin = self._tracer.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        dur = tracer.now() - self._begin
        if dur < 0:            # clock re-attached mid-span; clamp
            dur = 0
        tracer._record(PHASE_SPAN, self._category, self._name,
                       self._begin, dur, self._vcpu, self._vmpl,
                       self._pid, self._args)
        return False


class Tracer:
    """Span/event recorder clocked by a cycle ledger.

    Construct one, pass it to :class:`~repro.hw.platform.SevSnpMachine`
    (directly or via :class:`~repro.core.boot.VeilConfig`), and every
    layer of the stack records into it.  Export with
    :func:`repro.trace.export.chrome_trace` /
    :func:`repro.trace.export.render_summary`.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 clock: "typing.Callable[[], int] | None" = None):
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive: {capacity}")
        self.capacity = capacity
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.recorded = 0
        self.metrics = MetricsRegistry()
        self._clock: typing.Callable[[], int] = clock or (lambda: 0)

    # -- clock ------------------------------------------------------------

    def attach_ledger(self, ledger) -> None:
        """Clock this tracer off a machine's cycle ledger.

        Called by :class:`~repro.hw.platform.SevSnpMachine` at
        construction.  A tracer shared across several machines (the
        benchmark fixture) is re-attached by each; spans straddling an
        attach clamp their duration at zero rather than going negative.
        """
        self._clock = lambda: ledger.total

    def now(self) -> int:
        """Current virtual time (cycles)."""
        return self._clock()

    # -- recording --------------------------------------------------------

    def span(self, category: str, name: str, *, vcpu: int = UNATTRIBUTED,
             vmpl: int = UNATTRIBUTED, pid: int = UNATTRIBUTED,
             args: dict | None = None) -> _Span:
        """Open a span; use as ``with tracer.span(...):``."""
        return _Span(self, category, name, vcpu, vmpl, pid, args)

    def instant(self, category: str, name: str, *,
                vcpu: int = UNATTRIBUTED, vmpl: int = UNATTRIBUTED,
                pid: int = UNATTRIBUTED, args: dict | None = None) -> None:
        """Record a point event at the current cycle timestamp."""
        self._record(PHASE_INSTANT, category, name, self.now(), 0,
                     vcpu, vmpl, pid, args)

    def _record(self, phase: str, category: str, name: str, ts: int,
                dur: int, vcpu: int, vmpl: int, pid: int, args) -> None:
        self.recorded += 1
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(TraceEvent(
            phase=phase, category=category, name=name, ts=ts, dur=dur,
            vcpu=vcpu, vmpl=vmpl, pid=pid, seq=self.recorded,
            args=_freeze_args(args)))
        key = f"{category}:{name}"
        if phase == PHASE_SPAN:
            self.metrics.count("span", key)
            self.metrics.observe("cycles", key, dur)
        else:
            self.metrics.count("event", key)

    # -- queries ----------------------------------------------------------

    def spans(self, category: str | None = None,
              name: str | None = None) -> list[TraceEvent]:
        """Recorded spans, optionally filtered by category and/or name."""
        return [e for e in self.events if e.phase == PHASE_SPAN and
                (category is None or e.category == category) and
                (name is None or e.name == name)]

    def instants(self, category: str | None = None,
                 name: str | None = None) -> list[TraceEvent]:
        """Recorded instants, optionally filtered."""
        return [e for e in self.events if e.phase == PHASE_INSTANT and
                (category is None or e.category == category) and
                (name is None or e.name == name)]

    def clear(self) -> None:
        """Drop every recorded event and reset the metrics registry."""
        self.events.clear()
        self.dropped = 0
        self.recorded = 0
        self.metrics = MetricsRegistry()


class _NullSpan:
    """Shared no-op context manager (one instance for the whole process)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()

#: Shared no-op span for hot paths that want to skip even the
#: ``NullTracer.span(...)`` call (argument packing costs show up on the
#: VCPU access path): write
#: ``span = tracer.span(...) if tracer.enabled else NULL_SPAN``.
NULL_SPAN = _NULL_SPAN


class NullTracer:
    """Tracing disabled: every operation is a no-op.

    This is the default tracer on every machine, so instrumented hot
    paths (``VMGEXIT``, syscall dispatch) cost one attribute lookup and
    one trivially-returning call when tracing is off.
    """

    enabled = False
    capacity = 0
    dropped = 0
    recorded = 0
    events: tuple = ()
    metrics = NULL_METRICS

    def attach_ledger(self, ledger) -> None:
        """No-op (tracing disabled)."""

    def now(self) -> int:
        """Always zero (no clock attached)."""
        return 0

    def span(self, *args, **kwargs) -> _NullSpan:
        """The shared no-op context manager."""
        return _NULL_SPAN

    def instant(self, *args, **kwargs) -> None:
        """No-op (tracing disabled)."""

    def spans(self, category=None, name=None) -> list:
        """Always empty."""
        return []

    def instants(self, category=None, name=None) -> list:
        """Always empty."""
        return []

    def clear(self) -> None:
        """No-op (nothing recorded)."""


#: Process-wide shared no-op tracer (stateless, safe across machines).
NULL_TRACER = NullTracer()

#: Process-wide default tracer; see :func:`set_default_tracer`.
_DEFAULT_TRACER: "Tracer | None" = None


def set_default_tracer(tracer: "Tracer | None") -> None:
    """Install (or clear, with ``None``) the process-wide default tracer.

    Machines built without an explicit ``tracer`` pick this up, which is
    how the benchmark suite's ``VEIL_TRACE_DIR`` fixture captures traces
    from systems booted deep inside harness functions.
    """
    global _DEFAULT_TRACER
    _DEFAULT_TRACER = tracer


def default_tracer() -> "Tracer | None":
    """The process-wide default tracer, if one is installed."""
    return _DEFAULT_TRACER
