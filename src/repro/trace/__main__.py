"""``python -m repro.trace validate <file.json>``: trace file checker.

Used by CI to assert that exported traces conform to the Chrome
trace-event schema before uploading them as artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import validate_chrome_trace


def run(argv=None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.trace",
        description="veil-trace file utilities")
    sub = parser.add_subparsers(dest="command", required=True)
    validate = sub.add_parser(
        "validate", help="check a trace file against the Chrome schema")
    validate.add_argument("path", help="trace JSON file to validate")
    args = parser.parse_args(argv)

    with open(args.path, "r", encoding="utf-8") as fh:
        try:
            obj = json.load(fh)
        except json.JSONDecodeError as exc:
            print(f"{args.path}: not valid JSON: {exc}", file=sys.stderr)
            return 1
    problems = validate_chrome_trace(obj)
    if problems:
        for problem in problems:
            print(f"{args.path}: {problem}", file=sys.stderr)
        return 1
    events = len(obj["traceEvents"])
    print(f"{args.path}: OK ({events} events)")
    return 0


if __name__ == "__main__":
    sys.exit(run())
