"""Inter-host network model for the Veil fleet.

Where :mod:`repro.kernel.net` models the loopback *inside* one CVM, this
module models the untrusted datacenter fabric *between* machines: the
front end, every replica CVM, and the auditor are endpoints exchanging
opaque byte messages.  The fabric is untrusted in exactly the same sense
as the paper's host network -- it delivers, delays, observes, and (in
attack tests) tampers with traffic; confidentiality and integrity come
only from the attested :class:`~repro.crypto.channel.SecureChannel`
records layered on top.

Costs are cycle-calibrated and charged to *both* endpoints' ledgers, the
way real NIC + stack work lands on both hosts: a fixed per-message
latency (interrupt, driver, protocol processing) plus a per-byte
bandwidth term.  Delivery is synchronous FIFO per (src, dst) ordering --
the fleet's workloads are closed-loop, matching the intra-CVM stack.
"""

from __future__ import annotations

import json
import typing
from collections import deque
from dataclasses import dataclass

from ..errors import SimulationError
from ..scope.collector import NULL_SCOPE
from ..trace.tracer import NULL_TRACER

if typing.TYPE_CHECKING:
    from ..hw.cycles import CycleLedger


#: Shared encoder (veil-warp): identical bytes to ``json.dumps`` with
#: the same options, without constructing an encoder per message.
_WIRE_ENCODER = json.JSONEncoder(sort_keys=True, separators=(",", ":"))


def encode_message(payload: dict) -> bytes:
    """Serialize a fleet control/data message deterministically."""
    return _WIRE_ENCODER.encode(payload).encode("utf-8")


def decode_message(wire: bytes) -> dict:
    """Inverse of :func:`encode_message`."""
    return json.loads(wire.decode("utf-8"))


def try_decode(wire: bytes) -> dict | None:
    """Decode a fabric message, or ``None`` if it is not well-formed.

    The fabric is untrusted: under fault injection (or a real bit-flip)
    a message may arrive as arbitrary bytes.  Endpoints use this instead
    of :func:`decode_message` on any receive path that must survive
    garbage rather than crash the simulation.
    """
    try:
        message = json.loads(wire.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return message if isinstance(message, dict) else None


@dataclass(frozen=True)
class NetCostModel:
    """Cycle costs of one inter-host message at the 3 GHz nominal clock.

    Defaults model an intra-datacenter link: ~5 us one-way software +
    fabric latency (15k cycles) and a ~25 GB/s effective NIC bandwidth
    (0.12 cycles/byte).  Tests may zero them when timing is irrelevant.
    """

    latency_cycles: int = 15_000
    per_byte_x1000: int = 120

    def message_cost(self, nbytes: int) -> int:
        """Cycles one endpoint pays to move ``nbytes`` over the fabric."""
        return self.latency_cycles + (nbytes * self.per_byte_x1000) // 1000


class HostEndpoint:
    """One attachment point on the fabric (a machine or the front end)."""

    def __init__(self, name: str, ledger: "CycleLedger"):
        self.name = name
        self.ledger = ledger
        #: FIFO of (src_name, payload) awaiting :meth:`InterHostNetwork.recv`.
        self.inbox: deque[tuple[str, bytes]] = deque()


class InterHostNetwork:
    """The untrusted fabric connecting fleet endpoints.

    Per-link message and byte counts land in the tracer's metrics
    registry (``net_msgs/<src>-><dst>``, ``net_bytes/<src>-><dst>``) so
    exported traces break fleet traffic down by link.
    """

    def __init__(self, cost: NetCostModel | None = None, tracer=None):
        self.cost = cost or NetCostModel()
        self.tracer = tracer or NULL_TRACER
        #: Fleet-wide observer (veil-scope); swapped in by the fleet
        #: when a run is scoped.  Observation only -- it never charges.
        self.scope = NULL_SCOPE
        self._endpoints: dict[str, HostEndpoint] = {}
        self.messages = 0
        self.bytes_moved = 0

    def attach(self, name: str, ledger: "CycleLedger") -> HostEndpoint:
        """Register an endpoint; its ledger pays this host's network costs."""
        if name in self._endpoints:
            raise SimulationError(f"endpoint {name!r} already attached")
        endpoint = HostEndpoint(name, ledger)
        self._endpoints[name] = endpoint
        return endpoint

    def rebind(self, name: str, ledger: "CycleLedger") -> None:
        """Point an attached endpoint at a rebuilt host ledger.

        A cold reboot (:meth:`ClusterReplica.reboot`) replaces the whole
        machine behind a fabric slot; the endpoint survives but must
        charge the *new* host's ledger.  The inbox clears with it -- a
        rebooted machine does not replay its dead NIC's queue.
        """
        endpoint = self.endpoint(name)
        endpoint.ledger = ledger
        endpoint.inbox.clear()

    def endpoint(self, name: str) -> HostEndpoint:
        """Look up an attached endpoint."""
        try:
            return self._endpoints[name]
        except KeyError:
            raise SimulationError(
                f"no endpoint {name!r} on the fabric") from None

    def send(self, src: str, dst: str, payload: bytes) -> None:
        """Deliver ``payload`` from ``src`` to ``dst``'s inbox.

        Both endpoints are charged the transfer cost under the ``net``
        ledger category (tx on ``src``, rx on ``dst``).
        """
        source = self.endpoint(src)
        target = self.endpoint(dst)
        cycles = self.cost.message_cost(len(payload))
        source.ledger.charge("net", cycles)
        target.ledger.charge("net", cycles)
        target.inbox.append((src, payload))
        self.messages += 1
        self.bytes_moved += len(payload)
        link = f"{src}->{dst}"
        self.tracer.metrics.count("net_msgs", link)
        self.tracer.metrics.count("net_bytes", link, len(payload))
        if self.scope.enabled:
            self.scope.on_message(src, dst, payload)

    def recv(self, dst: str) -> tuple[str, bytes]:
        """Pop the oldest pending message for ``dst``."""
        endpoint = self.endpoint(dst)
        if not endpoint.inbox:
            raise SimulationError(f"no pending message for {dst!r}")
        return endpoint.inbox.popleft()

    def pending(self, dst: str) -> int:
        """Messages waiting in ``dst``'s inbox."""
        return len(self.endpoint(dst).inbox)
