"""veil-fleet: multiple Veil CVMs behind an attested front end.

This package composes whole machines rather than layers inside one
machine: N independent :class:`~repro.hw.platform.SevSnpMachine` + Veil
stacks (:mod:`~repro.cluster.replica`) attached to a cycle-costed
inter-host fabric (:mod:`~repro.cluster.net`), admitted into a routing
set only after remote attestation (:mod:`~repro.cluster.attest`), served
by a load-balancing front end (:mod:`~repro.cluster.frontend`), and
audited fleet-wide by a central log collector
(:mod:`~repro.cluster.auditor`).  :func:`~repro.cluster.fleet.run_cluster`
ties the phases together.
"""

from .attest import (AttestedLink, FleetVerifier, RejectedHandshake,
                     derive_data_key)
from .auditor import FleetAuditor, FleetAuditReport, ReplicaAudit
from .fleet import (ClusterConfig, ClusterFleet, ClusterResult, FleetClock,
                    run_cluster)
from .frontend import (POLICIES, ConsistentHash, FrontEnd, LeastOutstanding,
                       RoundRobin, RoutingPolicy, make_policy)
from .net import HostEndpoint, InterHostNetwork, NetCostModel, \
    decode_message, encode_message, try_decode
from .replica import (BackdoorService, ClusterReplica,
                      expected_fleet_measurement)

__all__ = [
    "AttestedLink", "FleetVerifier", "RejectedHandshake", "derive_data_key",
    "FleetAuditor", "FleetAuditReport", "ReplicaAudit",
    "ClusterConfig", "ClusterFleet", "ClusterResult", "FleetClock",
    "run_cluster",
    "POLICIES", "ConsistentHash", "FrontEnd", "LeastOutstanding",
    "RoundRobin", "RoutingPolicy", "make_policy",
    "HostEndpoint", "InterHostNetwork", "NetCostModel",
    "decode_message", "encode_message", "try_decode",
    "BackdoorService", "ClusterReplica", "expected_fleet_measurement",
]
