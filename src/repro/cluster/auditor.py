"""Fleet-wide audit-log collection and verification.

The auditor is the remote-user side of VeilS-LOG at datacenter scale: a
central host that pages every replica's ``log_export`` over the fabric,
unseals each chunk with the attested *control* channel (the exact key
VeilMon holds), and verifies the service's chained MAC over the full
record stream.  Because the chain digest travels *inside* the sealed
record, a compromised relaying OS can neither rewrite entries nor splice
chunks from different epochs without the recomputed chain diverging.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from ..crypto.hashes import MeasurementChain
from ..errors import SecurityViolation
from ..hw.cycles import CycleLedger
from ..trace.tracer import NULL_TRACER
from .attest import AttestedLink
from .net import InterHostNetwork, encode_message, try_decode

if typing.TYPE_CHECKING:
    from .replica import ClusterReplica


@dataclass
class ReplicaAudit:
    """Verified export of one replica's protected log."""

    replica: str
    entries: list[str]
    chain_hex: str
    chunks: int
    verified: bool = True


@dataclass
class FleetAuditReport:
    """Aggregate result of one fleet-wide audit sweep."""

    replicas: list[ReplicaAudit] = field(default_factory=list)

    @property
    def total_entries(self) -> int:
        return sum(len(audit.entries) for audit in self.replicas)

    @property
    def all_verified(self) -> bool:
        return all(audit.verified for audit in self.replicas)


class FleetAuditor:
    """Central log collector holding the fleet's control channels."""

    #: Bounded retry budget per export chunk.  A dropped, corrupted, or
    #: refused chunk is simply re-requested -- the replica re-seals it
    #: under a fresh counter and the windowed control channel accepts
    #: the re-sealed record.
    CHUNK_ATTEMPTS = 4

    def __init__(self, net: InterHostNetwork, *, name: str = "auditor",
                 tracer=None):
        self.net = net
        self.name = name
        self.tracer = tracer or NULL_TRACER
        self.ledger = CycleLedger()
        net.attach(name, self.ledger)

    def _chunk_reply(self, replica_name: str, start: int) -> dict | None:
        """Pop the reply for the chunk at ``start``, discarding the rest.

        Fabric garbage and stale/duplicated replies to earlier chunk
        requests are dropped (and counted) so a retried export never
        splices the wrong chunk into the record stream.
        """
        matched = None
        while self.net.pending(self.name):
            src, wire = self.net.recv(self.name)
            reply = try_decode(wire)
            if (matched is None and reply is not None
                    and src == replica_name
                    and reply.get("start") == start):
                matched = reply
            else:
                self.tracer.metrics.count(
                    "auditor_discarded",
                    "stale" if reply is not None else "garbage")
        return matched

    def _fetch_chunk(self, link: AttestedLink, replica: "ClusterReplica",
                     start: int) -> tuple[dict, dict]:
        """One chunk with bounded retry: (envelope, unsealed payload)."""
        reason = "no attempts"
        for _attempt in range(self.CHUNK_ATTEMPTS):
            self.net.send(self.name, link.replica, encode_message(
                # veil-lint: allow(trace-context) -- control-plane frame: the audit sweep is not part of any client request
                {"kind": "log_export", "start": start}))
            replica.pump()
            reply = self._chunk_reply(link.replica, start)
            if reply is None:
                reason = "no reply"
            elif reply.get("status") != "ok":
                reason = f"refused export: {reply.get('reason', reply)}"
            else:
                try:
                    sealed = bytes.fromhex(reply.get("record_hex", ""))
                    payload = link.control.receive(sealed)
                except ValueError as malformed:
                    reason = f"malformed chunk: {malformed}"
                except SecurityViolation as tampered:
                    reason = f"tampered chunk: {tampered}"
                else:
                    return reply, payload
            self.tracer.metrics.count("audit_chunk_retry", link.replica)
        raise SecurityViolation(
            f"replica {link.replica} export chunk at {start} failed "
            f"after {self.CHUNK_ATTEMPTS} attempts ({reason})")

    def pull(self, link: AttestedLink,
             replica: "ClusterReplica") -> ReplicaAudit:
        """Page one replica's sealed export and verify its MAC chain."""
        entries: list[str] = []
        chain_hex = MeasurementChain().hexdigest
        start: int | None = 0
        chunks = 0
        with self.tracer.span("cluster", "audit_pull",
                              args={"replica": link.replica}):
            while start is not None:
                reply, payload = self._fetch_chunk(link, replica, start)
                entries.extend(payload["logs"])
                chain_hex = payload["chain_hex"]
                start = reply.get("next")
                chunks += 1
        recomputed = MeasurementChain()
        for entry in entries:
            recomputed.extend("log", entry.encode("utf-8"))
        verified = recomputed.hexdigest == chain_hex
        self.tracer.metrics.count("audit_entries", link.replica,
                                  len(entries))
        self.tracer.metrics.count(
            "audit_verified" if verified else "audit_failed", link.replica)
        if not verified:
            self.tracer.instant("cluster", "audit_chain_mismatch",
                                args={"replica": link.replica})
        return ReplicaAudit(replica=link.replica, entries=entries,
                            chain_hex=chain_hex, chunks=chunks,
                            verified=verified)

    def sweep(self, links: "typing.Iterable[AttestedLink]",
              replicas: "dict[str, ClusterReplica]") -> FleetAuditReport:
        """Audit every attested replica; raise if any chain fails."""
        report = FleetAuditReport()
        for link in links:
            audit = self.pull(link, replicas[link.replica])
            report.replicas.append(audit)
        if not report.all_verified:
            bad = [a.replica for a in report.replicas if not a.verified]
            raise SecurityViolation(
                f"audit chain mismatch on {', '.join(bad)}")
        return report
