"""Fleet-wide audit-log collection and verification.

The auditor is the remote-user side of VeilS-LOG at datacenter scale: a
central host that pages every replica's ``log_export`` over the fabric,
unseals each chunk with the attested *control* channel (the exact key
VeilMon holds), and verifies the service's chained MAC over the full
record stream.  Because the chain digest travels *inside* the sealed
record, a compromised relaying OS can neither rewrite entries nor splice
chunks from different epochs without the recomputed chain diverging.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from ..crypto.hashes import MeasurementChain
from ..errors import SecurityViolation
from ..hw.cycles import CycleLedger
from ..trace.tracer import NULL_TRACER
from .attest import AttestedLink
from .net import InterHostNetwork, decode_message, encode_message

if typing.TYPE_CHECKING:
    from .replica import ClusterReplica


@dataclass
class ReplicaAudit:
    """Verified export of one replica's protected log."""

    replica: str
    entries: list[str]
    chain_hex: str
    chunks: int
    verified: bool = True


@dataclass
class FleetAuditReport:
    """Aggregate result of one fleet-wide audit sweep."""

    replicas: list[ReplicaAudit] = field(default_factory=list)

    @property
    def total_entries(self) -> int:
        return sum(len(audit.entries) for audit in self.replicas)

    @property
    def all_verified(self) -> bool:
        return all(audit.verified for audit in self.replicas)


class FleetAuditor:
    """Central log collector holding the fleet's control channels."""

    def __init__(self, net: InterHostNetwork, *, name: str = "auditor",
                 tracer=None):
        self.net = net
        self.name = name
        self.tracer = tracer or NULL_TRACER
        self.ledger = CycleLedger()
        net.attach(name, self.ledger)

    def pull(self, link: AttestedLink,
             replica: "ClusterReplica") -> ReplicaAudit:
        """Page one replica's sealed export and verify its MAC chain."""
        entries: list[str] = []
        chain_hex = MeasurementChain().hexdigest
        start: int | None = 0
        chunks = 0
        with self.tracer.span("cluster", "audit_pull",
                              args={"replica": link.replica}):
            while start is not None:
                self.net.send(self.name, link.replica, encode_message(
                    {"kind": "log_export", "start": start}))
                replica.pump()
                _src, wire = self.net.recv(self.name)
                reply = decode_message(wire)
                if reply.get("status") != "ok":
                    raise SecurityViolation(
                        f"replica {link.replica} refused export: {reply}")
                sealed = bytes.fromhex(reply["record_hex"])
                payload = link.control.receive(sealed)  # raises on tamper
                entries.extend(payload["logs"])
                chain_hex = payload["chain_hex"]
                start = reply.get("next")
                chunks += 1
        recomputed = MeasurementChain()
        for entry in entries:
            recomputed.extend("log", entry.encode("utf-8"))
        verified = recomputed.hexdigest == chain_hex
        self.tracer.metrics.count("audit_entries", link.replica,
                                  len(entries))
        self.tracer.metrics.count(
            "audit_verified" if verified else "audit_failed", link.replica)
        if not verified:
            self.tracer.instant("cluster", "audit_chain_mismatch",
                                args={"replica": link.replica})
        return ReplicaAudit(replica=link.replica, entries=entries,
                            chain_hex=chain_hex, chunks=chunks,
                            verified=verified)

    def sweep(self, links: "typing.Iterable[AttestedLink]",
              replicas: "dict[str, ClusterReplica]") -> FleetAuditReport:
        """Audit every attested replica; raise if any chain fails."""
        report = FleetAuditReport()
        for link in links:
            audit = self.pull(link, replicas[link.replica])
            report.replicas.append(audit)
        if not report.all_verified:
            bad = [a.replica for a in report.replicas if not a.verified]
            raise SecurityViolation(
                f"audit chain mismatch on {', '.join(bad)}")
        return report
