"""One fleet member: a whole Veil CVM serving a workload replica.

A :class:`ClusterReplica` boots an independent
:class:`~repro.hw.platform.SevSnpMachine` + Veil stack (its own PSP
launch measurement, VeilMon, protected services, kernel, processes),
attaches it to the inter-host fabric, and runs one service replica --
the paper's memcached or SQLite workload model -- behind the
attestation-gated data channel.

Two hosting modes mirror the paper's evaluation axes:

* ``shielded=True`` (default): the request handler executes inside a
  VeilS-ENC enclave; every syscall it makes takes the redirection path
  with its domain-switch costs (Fig. 5's deployment);
* ``shielded=False``: the handler is an ordinary DomUNT process (the
  audited-native baseline of Fig. 6).

Either way VeilS-LOG auditing is active, so every served request leaves
chained audit records that the fleet auditor later pulls and verifies
over the attested control channel.
"""

from __future__ import annotations

import dataclasses
import typing

from ..core import VeilConfig, boot_veil_system
from ..core.boot import build_boot_image, module_signing_key
from ..core.services.base import ProtectedService
from ..crypto import SecureChannel, sha256
from ..errors import SecurityViolation
from ..kernel.net import AF_INET, SOCK_STREAM
from ..scope.context import TraceContext, extract_context
from ..workloads.audit_programs import (MEMCACHED_COMPUTE_PER_OP,
                                        MEMCACHED_VALUE_BYTES)
from ..workloads.base import NativeApi
from ..workloads.programs import (SQLITE_COMPUTE_PER_INSERT,
                                  SQLITE_JOURNAL_BYTES, SQLITE_ROW_BYTES)
from .attest import CHANNEL_WINDOW, derive_data_key
from .net import InterHostNetwork, encode_message, try_decode

if typing.TYPE_CHECKING:
    from ..trace.tracer import Tracer

#: Service port each replica's workload listens on (in-CVM loopback).
REPLICA_PORT = 11311

#: Replica workload models available to the fleet.
WORKLOADS = ("memcached", "sqlite")

#: Completed requests remembered for idempotent re-execution (per
#: replica).  Retries arrive within a handful of requests of the
#: original; 512 comfortably covers every retry window while bounding
#: memory on long runs.
IDEMPOTENCY_CACHE_ENTRIES = 512


class BackdoorService(ProtectedService):
    """A service that should *not* be in the fleet's measured image.

    Compiling it into a replica's boot image changes the launch digest,
    which is exactly how the acceptance tests model a tampered/backdoored
    replica: the machine boots fine, but the relying party's
    expected-digest policy rejects its attestation report.
    """

    name = "backdoor"


def expected_fleet_measurement(config: VeilConfig) -> bytes:
    """Launch digest of the *honest* boot image for ``config``.

    The fleet operator builds the image themselves, so the expected
    digest never includes services a tampered replica smuggled in via
    ``extra_services`` -- those are stripped before measuring.
    """
    clean = dataclasses.replace(config, extra_services=())
    fingerprint = module_signing_key().public.fingerprint()
    return sha256(build_boot_image(clean,
                                   trusted_key_fingerprint=fingerprint))


class ClusterReplica:
    """A booted Veil CVM attached to the fleet fabric."""

    def __init__(self, index: int, net: InterHostNetwork, *,
                 workload: str = "memcached", shielded: bool = True,
                 memory_bytes: int = 32 * 1024 * 1024,
                 num_cores: int = 2, log_storage_pages: int = 64,
                 tracer: "Tracer | None" = None,
                 tampered: bool = False):
        if workload not in WORKLOADS:
            raise ValueError(f"unknown replica workload {workload!r}; "
                             f"choose from {', '.join(WORKLOADS)}")
        self.index = index
        self.name = f"replica{index}"
        self.net = net
        self.workload = workload
        self.shielded = shielded
        self.tampered = tampered
        extra = ((BackdoorService.name,
                  lambda veilmon: BackdoorService(veilmon)),) if tampered \
            else ()
        self.config = VeilConfig(
            memory_bytes=memory_bytes, num_cores=num_cores,
            log_storage_pages=log_storage_pages, tracer=tracer,
            extra_services=extra)
        self.system = boot_veil_system(self.config)
        self.system.integration.enable_protected_logging()
        net.attach(self.name, self.ledger)
        #: Data-plane channel endpoint, provisioned at handshake time.
        self.data_channel: SecureChannel | None = None
        self.requests_served = 0
        #: False while crashed (fault injection): the replica neither
        #: pumps its inbox nor keeps volatile channel state.
        self.alive = True
        self.crashes = 0
        #: Cold reboots (fresh system + ledger), distinct from crashes.
        self.reboots = 0
        #: request_id -> served result, for idempotent re-execution of
        #: retried requests (bounded FIFO).
        self._completed: dict[int, dict] = {}
        self._setup_service()

    # -- convenience accessors ------------------------------------------

    @property
    def machine(self):
        return self.system.machine

    @property
    def ledger(self):
        return self.system.machine.ledger

    @property
    def tracer(self):
        return self.system.machine.tracer

    @property
    def core(self):
        return self.system.boot_core

    # -- service setup ---------------------------------------------------

    def _setup_service(self) -> None:
        """Start the replica's service: listener, connection, handler."""
        kernel = self.system.kernel
        if self.shielded:
            from ..enclave import EnclaveHost, build_test_binary
            self._host = EnclaveHost(
                self.system,
                build_test_binary(f"{self.workload}-replica",
                                  heap_pages=8))
            self._host.launch()
            proc = self._host.proc
        else:
            self._host = None
            proc = kernel.create_process(f"{self.workload}-replica")
        self._proc = proc
        #: Plain-process API for setup work (socket plumbing, files).
        self._api = NativeApi(kernel, self.core, proc)
        listener = self._api.socket(AF_INET, SOCK_STREAM)
        self._api.bind(listener, "127.0.0.1", REPLICA_PORT)
        self._api.listen(listener, 64)
        self._client = kernel.net.socket(AF_INET, SOCK_STREAM)
        kernel.net.connect(self._client, "127.0.0.1", REPLICA_PORT)
        self._conn = self._api.accept(listener)
        if self.workload == "sqlite":
            from ..kernel.fs import O_APPEND, O_CREAT, O_RDWR
            self._db_fd = self._api.open("/tmp/replica.db",
                                         O_CREAT | O_RDWR)
            self._journal_fd = self._api.open(
                "/tmp/replica.db-journal", O_CREAT | O_RDWR | O_APPEND)
        self._store: dict[str, int] = {}

    # -- handshake-side hooks -------------------------------------------

    def provision_data_channel(self) -> None:
        """Derive the data-plane key from the freshly attested link.

        Models VeilMon provisioning the service replica with the
        domain-separated data key after the user channel is installed.
        """
        channel = self.system.veilmon.user_channel
        if channel is None:
            raise SecurityViolation(
                "data channel requires an established user channel")
        self.data_channel = SecureChannel(derive_data_key(channel.key),
                                          role="responder",
                                          window=CHANNEL_WINDOW)

    # -- crash / restart (fault injection) -------------------------------

    def crash(self) -> None:
        """Fail-stop this replica mid-flight.

        Volatile state dies with the CVM: the pending inbox is gone and
        so is the provisioned data channel -- after a restart the
        replica refuses sealed traffic until the relying party runs a
        fresh re-attestation handshake.
        """
        self.alive = False
        self.crashes += 1
        self.data_channel = None
        self.net.endpoint(self.name).inbox.clear()
        self.tracer.instant("chaos", "replica_crash",
                            args={"replica": self.name})
        self.tracer.metrics.count("chaos_crash", self.name)

    def restart(self) -> None:
        """Bring a crashed replica back (still unattested until healed).

        Messages the fabric delivered while the host was down are lost
        with it -- a rebooted machine does not replay its dead NIC's
        queue.
        """
        self.alive = True
        self.net.endpoint(self.name).inbox.clear()
        self.tracer.instant("chaos", "replica_restart",
                            args={"replica": self.name})
        self.tracer.metrics.count("chaos_restart", self.name)

    def reboot(self) -> None:
        """Cold-restart: boot a fresh CVM image on this fabric slot.

        Where :meth:`restart` brings the *same* machine back (ledger and
        measured state intact), a reboot rebuilds the whole stack --
        new machine, new launch measurement run, and crucially a new
        :class:`CycleLedger` starting at zero.  Callers that merge this
        ledger into a fleet timeline must swap it via
        :meth:`FleetClock.replace` (``ClusterFleet.reboot_replica`` does)
        or merged time would step backwards.  All volatile state dies:
        data channel, idempotency cache, in-memory store, NIC queue.
        The replica is up but unattested -- sealed traffic is refused
        until a fresh relying-party handshake re-admits it.
        """
        self.reboots += 1
        self.system = boot_veil_system(self.config)
        self.system.integration.enable_protected_logging()
        self.net.rebind(self.name, self.ledger)
        self.data_channel = None
        self._completed.clear()
        self.alive = True
        self._setup_service()
        self.tracer.instant("chaos", "replica_reboot",
                            args={"replica": self.name})
        self.tracer.metrics.count("chaos_reboot", self.name)

    # -- fabric message pump --------------------------------------------

    def pump(self) -> int:
        """Drain this replica's inbox, handling each message.

        The in-CVM path models the untrusted OS receiving fabric bytes
        and either relaying control requests to VeilMon / DomSER or
        dispatching sealed data records to the service replica.
        Returns the number of messages handled.  A crashed replica
        handles nothing; fabric garbage (bit-flipped envelopes) is
        dropped without a reply.
        """
        if not self.alive:
            return 0
        handled = 0
        while self.net.pending(self.name):
            src, wire = self.net.recv(self.name)
            message = try_decode(wire)
            if message is None:
                self.tracer.metrics.count("replica_garbage_dropped",
                                          self.name)
                continue
            reply = self._dispatch(message)
            self.net.send(self.name, src, encode_message(reply))
            handled += 1
        return handled

    def _dispatch(self, message: dict) -> dict:
        kind = message.get("kind")
        gateway = self.system.gateway
        if kind == "attest":
            return gateway.call_monitor(self.core, {"op": "attest"})
        if kind == "channel_init":
            reply = gateway.call_monitor(self.core, {
                "op": "user_channel_init",
                "peer_public_hex": message["peer_public_hex"]})
            self.provision_data_channel()
            return reply
        if kind == "log_export":
            try:
                start = int(message.get("start", 0))
            except (TypeError, ValueError):
                return {"status": "error", "reason": "malformed start"}
            reply = gateway.call_service(self.core, {
                "op": "log_export", "start": start})
            # Echo the chunk offset so the auditor can match retried
            # chunk replies to the request they answer.
            return dict(reply, start=start)
        if kind == "request":
            request_id = message.get("request_id")
            # Propagated trace context (veil-scope): extracted and
            # echoed regardless of observation, so reply bytes -- and
            # with them fabric cycle charges -- never depend on whether
            # a collector is attached.
            ctx = extract_context(message)
            try:
                sealed = bytes.fromhex(message.get("record_hex", ""))
            except ValueError:
                reply = {"status": "error", "request_id": request_id,
                         "reason": "malformed record"}
            else:
                reply = self._handle_request(sealed, ctx)
                reply["request_id"] = request_id
            if ctx is not None:
                reply["trace"] = ctx.as_wire()
            return reply
        return {"status": "error", "reason": f"unknown kind {kind!r}"}

    # -- the service replica --------------------------------------------

    def _handle_request(self, sealed: bytes,
                        ctx: "TraceContext | None" = None) -> dict:
        """Unseal one data record, serve it, and seal the response.

        Tampered, replayed, or out-of-window records are refused (the
        channel's verdict travels back as an error envelope; the sealed
        payload is never half-trusted).  A request id that already
        completed is served from the idempotency cache without
        re-executing the workload -- that is what makes front-end
        retries safe when only the *reply* was lost.
        """
        if self.data_channel is None:
            return {"status": "error", "reason": "no attested channel"}
        cost = self.machine.cost
        self.ledger.charge("crypto", cost.cipher_cost(len(sealed)))
        try:
            request = self.data_channel.receive(sealed)
        except SecurityViolation as refused:
            self.tracer.metrics.count("replica_refused", self.name)
            return {"status": "error", "reason": f"channel: {refused}"}
        request_id = request.get("request_id")
        cached = self._completed.get(request_id) \
            if request_id is not None else None
        if cached is not None:
            self.tracer.metrics.count("idempotent_replay", self.name)
            result = cached
        else:
            span_args = {"replica": self.name}
            if ctx is not None:
                # Link this serve span to the front end's request trace
                # (args come off the wire, so they are identical with
                # scope on or off).
                span_args["trace_id"] = ctx.trace_id
                span_args["span_id"] = ctx.span_id
            with self.tracer.span("cluster", f"serve:{self.workload}",
                                  vcpu=self.core.cpu_index,
                                  args=span_args):
                if self.workload == "memcached":
                    result = self._serve_memcached(request)
                else:
                    result = self._serve_sqlite(request)
            self.requests_served += 1
            if request_id is not None:
                self._completed[request_id] = result
                while len(self._completed) > IDEMPOTENCY_CACHE_ENTRIES:
                    self._completed.pop(next(iter(self._completed)))
        response = self.data_channel.send(result)
        self.ledger.charge("crypto", cost.cipher_cost(len(response)))
        return {"status": "ok", "record_hex": response.hex()}

    def _run_handler(self, body) -> dict:
        """Execute ``body(api)`` in the configured hosting mode."""
        if self._host is not None:
            from ..workloads.base import EnclaveApi
            return self._host.run(lambda libc: body(EnclaveApi(libc)))
        return body(self._api)

    def _serve_memcached(self, request: dict) -> dict:
        """One memaslap-style op against the in-CVM memcached model."""
        key = str(request.get("key", "key0"))
        if request.get("op") == "set":
            length = int(request.get("value_len", MEMCACHED_VALUE_BYTES))
            line = f"set {key} 0 0 {length}\r\n".encode() + b"V" * length
        else:
            length = self._store.get(key, MEMCACHED_VALUE_BYTES)
            line = f"get {key}\r\n".encode()
        self._client.send(line)

        def body(api):
            api.recv(self._conn, 1024)               # audited: recvfrom
            api.compute(MEMCACHED_COMPUTE_PER_OP)
            if request.get("op") == "set":
                self._store[key] = length
            return api.send(self._conn, b"V" * length)   # audited: sendto

        sent = self._run_handler(body)
        self._client.recv(length + 64)               # client drains reply
        return {"status": "ok", "op": request.get("op", "get"),
                "key": key, "bytes": sent}

    def _serve_sqlite(self, request: dict) -> dict:
        """One speedtest-style INSERT against the in-CVM SQLite model."""
        row = b"r" * int(request.get("row_bytes", SQLITE_ROW_BYTES))
        entry = b"j" * SQLITE_JOURNAL_BYTES

        def body(api):
            api.compute(SQLITE_COMPUTE_PER_INSERT)
            api.write(self._journal_fd, entry)       # audited: write
            return api.write(self._db_fd, row)       # audited: write

        written = self._run_handler(body)
        return {"status": "ok", "op": "insert", "bytes": written}

    # -- observability ---------------------------------------------------

    def log_entry_count(self) -> int:
        """Audit records currently held by this replica's VeilS-LOG."""
        return self.system.log.entry_count
