"""The fleet's load-balancing front end.

The front end is an ordinary (non-CVM) host: it terminates client
traffic and fans requests out to attested replicas over per-link data
channels.  It never sees replica plaintext beyond what the links carry
-- it *is* the relying party that established those links, so it holds
the initiator ends.

Scheduling uses a deterministic virtual clock derived from the cycle
ledgers: the front end's own ledger (which the fabric charges for every
message) is "now", and each replica has a ``busy_until`` horizon pushed
forward by the measured service cycles of every request routed to it.
``outstanding`` is how far a replica's horizon sits beyond now -- the
queue depth a real least-outstanding balancer tracks -- so aggregate
throughput is the makespan of the resulting schedule and scales with
replica count.

Three routing policies, selectable by name:

``round-robin``
    Rotate through admitted replicas.
``least-outstanding``
    Route to the replica with the smallest outstanding-work horizon
    (ties break to the lowest replica index).
``consistent-hash``
    SHA-256 hash ring with virtual nodes keyed by the request key --
    stable key → replica affinity under membership change.

Failure semantics (veil-chaos): the fabric between the front end and
the replicas is *untrusted* -- it may drop, duplicate, delay, and
corrupt messages, and replicas may crash mid-request.  The request path
therefore assumes nothing about delivery: every logical request carries
an idempotent ``request_id``, failed attempts are retried with
deterministic exponential backoff, repeatedly-failing replicas are
struck and quarantined (degrading the routing candidate set instead of
raising), and quarantined replicas are periodically re-admitted through
a full re-attestation handshake (:attr:`FrontEnd.reattest`).  A request
only fails once every bounded retry against every candidate has been
exhausted.
"""

from __future__ import annotations

import typing
from bisect import bisect_left
from dataclasses import dataclass

from ..crypto import sha256
from ..errors import AttestationError, SecurityViolation, SimulationError
from ..hw.cycles import CLOCK_HZ, CycleLedger
from ..scope.collector import NULL_SCOPE
from ..scope.context import TraceContext
from ..trace.tracer import NULL_TRACER
from .attest import AttestedLink
from .net import InterHostNetwork, encode_message, try_decode

if typing.TYPE_CHECKING:
    from .replica import ClusterReplica


class RoutingPolicy:
    """Strategy interface: pick a replica name for one request."""

    name = "abstract"

    def choose(self, request: dict, candidates: list[str],
               outstanding: dict[str, int]) -> str:
        """Return the chosen replica name from ``candidates``."""
        raise NotImplementedError


class RoundRobin(RoutingPolicy):
    """Rotate through the admitted replica set."""

    name = "round-robin"

    def __init__(self):
        self._cursor = 0

    def choose(self, request, candidates, outstanding):
        """Pick the next replica in rotation, ignoring load."""
        picked = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return picked


class LeastOutstanding(RoutingPolicy):
    """Route to the replica with the least outstanding work."""

    name = "least-outstanding"

    def choose(self, request, candidates, outstanding):
        """Pick the idlest replica (name order breaks ties)."""
        return min(candidates, key=lambda n: (outstanding.get(n, 0), n))


class ConsistentHash(RoutingPolicy):
    """SHA-256 hash ring with virtual nodes, keyed by the request key."""

    name = "consistent-hash"
    VNODES = 16

    def __init__(self):
        self._ring: list[tuple[bytes, str]] = []
        self._positions: list[bytes] = []
        self._members: tuple[str, ...] = ()

    def _rebuild(self, candidates: list[str]) -> None:
        self._members = tuple(candidates)
        self._ring = sorted(
            (sha256(f"{name}#{vnode}".encode()), name)
            for name in candidates for vnode in range(self.VNODES))
        self._positions = [position for position, _name in self._ring]

    def choose(self, request, candidates, outstanding):
        """Map the request key to its clockwise ring successor.

        Binary search over the sorted ring positions (``bisect``), not a
        linear scan: the successor is the first position >= the key's
        hash point, wrapping to the first ring entry past the top.
        """
        if tuple(candidates) != self._members:
            self._rebuild(candidates)
        point = sha256(str(request.get("key", "")).encode())
        index = bisect_left(self._positions, point)
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]


#: Policy registry for the CLI / benchmarks.
POLICIES: dict[str, type[RoutingPolicy]] = {
    RoundRobin.name: RoundRobin,
    LeastOutstanding.name: LeastOutstanding,
    ConsistentHash.name: ConsistentHash,
}


def make_policy(name: str) -> RoutingPolicy:
    """Instantiate a routing policy by registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise SimulationError(
            f"unknown routing policy {name!r}; choose from "
            f"{', '.join(sorted(POLICIES))}") from None


@dataclass
class ReplicaHealth:
    """Per-replica failure bookkeeping held by the front end."""

    strikes: int = 0              # consecutive failed attempts
    quarantined: bool = False
    reason: str = ""              # why the replica was quarantined
    failures: int = 0             # all-time failed attempts
    reattested: int = 0           # successful re-admissions


class FrontEnd:
    """Attestation-aware load balancer over the fleet fabric."""

    #: Bounded retry budget for one logical request (attempts, not
    #: replicas: failover counts against the same budget).
    MAX_ATTEMPTS = 6
    #: Consecutive failures before a replica is quarantined.
    STRIKE_LIMIT = 3
    #: Deterministic backoff charged to the front-end ledger before
    #: retry ``n``: ``BACKOFF_BASE_CYCLES << min(n - 1, 6)``.
    BACKOFF_BASE_CYCLES = 4_000

    def __init__(self, net: InterHostNetwork, *, name: str = "frontend",
                 policy: "RoutingPolicy | str" = "least-outstanding",
                 tracer=None):
        self.net = net
        self.name = name
        self.policy = make_policy(policy) if isinstance(policy, str) \
            else policy
        self.tracer = tracer or NULL_TRACER
        #: Fleet-wide request-telemetry observer (veil-scope); the fleet
        #: swaps in a live collector on scoped runs.  Trace contexts are
        #: created and propagated regardless -- only observation toggles.
        self.scope = NULL_SCOPE
        #: The front end is a real host: the fabric charges its ledger.
        self.ledger = CycleLedger()
        net.attach(name, self.ledger)
        self._links: dict[str, AttestedLink] = {}
        self._replicas: dict[str, "ClusterReplica"] = {}
        #: Virtual-clock horizon (front-end ledger time) per replica.
        self.busy_until: dict[str, int] = {}
        self.routed: dict[str, int] = {}
        self.health: dict[str, ReplicaHealth] = {}
        #: Every replica ever admitted (the invariant checker uses this
        #: to assert no unattested replica served traffic).
        self.ever_admitted: set[str] = set()
        #: Re-attestation hook installed by the fleet: callable taking a
        #: replica name and returning a fresh :class:`AttestedLink`
        #: (raising ``AttestationError``/``SimulationError`` on failure).
        self.reattest: "typing.Callable[[str], AttestedLink] | None" = None
        self._request_seq = 0
        self.retries = 0
        #: All-time quarantine count (health entries reset on re-admit,
        #: this does not).
        self.quarantines = 0
        self._epoch = self.ledger.total

    # -- membership ------------------------------------------------------

    def admit(self, link: AttestedLink, replica: "ClusterReplica") -> None:
        """Add an attested replica to the routing set.

        Re-admission (after a successful re-attestation handshake)
        replaces the link -- fresh channels, fresh sequence space -- and
        clears the replica's failure record.
        """
        self._links[link.replica] = link
        self._replicas[link.replica] = replica
        self.busy_until.setdefault(link.replica, self.ledger.total)
        self.routed.setdefault(link.replica, 0)
        self.health[link.replica] = ReplicaHealth()
        self.ever_admitted.add(link.replica)

    @property
    def members(self) -> list[str]:
        """Admitted replica names, in index order."""
        return sorted(self._links, key=lambda n: self._replicas[n].index)

    @property
    def healthy(self) -> list[str]:
        """Admitted, non-quarantined replica names, in index order."""
        return [n for n in self.members
                if not self.health[n].quarantined]

    def link(self, name: str) -> AttestedLink:
        """The attested link for replica ``name`` (KeyError if not admitted)."""
        return self._links[name]

    def outstanding(self, name: str) -> int:
        """Cycles of queued work on ``name`` beyond the virtual now."""
        return max(0, self.busy_until.get(name, 0) - self.ledger.total)

    # -- health & recovery -----------------------------------------------

    def quarantine(self, name: str, reason: str) -> None:
        """Remove ``name`` from the routing candidates until re-attested."""
        health = self.health[name]
        if health.quarantined:
            return
        health.quarantined = True
        health.reason = reason
        # Drop the replica's scheduling state with it: whatever horizon
        # it had accrued is dead work now, and keeping it would skew
        # least-outstanding routing against the replica for its entire
        # first epoch back after re-admission (``admit`` re-seeds the
        # horizon at the virtual now of the heal).
        self.busy_until.pop(name, None)
        self.quarantines += 1
        self.tracer.instant("cluster", "replica_quarantined",
                            args={"replica": name, "reason": reason})
        self.tracer.metrics.count("replica_quarantined", name)

    def heal_quarantined(self) -> int:
        """Try to re-admit quarantined replicas via re-attestation.

        Each quarantined replica gets one fresh relying-party handshake
        (through :attr:`reattest`); success replaces the link and clears
        the quarantine, failure leaves it quarantined for the next heal
        sweep.  Returns how many replicas were re-admitted.
        """
        if self.reattest is None:
            return 0
        healed = 0
        for name in [n for n in self.members
                     if self.health[n].quarantined]:
            reattests = self.health[name].reattested
            try:
                link = self.reattest(name)
            except (AttestationError, SecurityViolation,
                    SimulationError) as refused:
                self.tracer.instant("cluster", "reattest_failed",
                                    args={"replica": name,
                                          "reason": str(refused)})
                self.tracer.metrics.count("reattest_failed", name)
                continue
            self.admit(link, self._replicas[name])
            self.health[name].reattested = reattests + 1
            self.tracer.metrics.count("replica_reattested", name)
            healed += 1
        return healed

    def _note_failure(self, name: str, reason: str, *,
                      ctx: "TraceContext | None" = None) -> None:
        """Record one failed attempt against ``name``; maybe quarantine."""
        health = self.health[name]
        health.strikes += 1
        health.failures += 1
        self.retries += 1
        if ctx is not None:
            self.scope.retry(ctx, name, reason)
        self.tracer.instant("cluster", "request_retry",
                            args={"replica": name, "reason": reason})
        self.tracer.metrics.count("request_retry", name)
        if health.strikes >= self.STRIKE_LIMIT:
            self.quarantine(name, reason)

    def _backoff(self, attempt: int) -> None:
        """Charge the deterministic retry backoff to the virtual clock."""
        cycles = self.BACKOFF_BASE_CYCLES << min(attempt - 1, 6)
        self.ledger.charge("backoff", cycles)

    # -- request path ----------------------------------------------------

    def allocate_request_id(self) -> int:
        """Claim the next idempotent request id (one per logical request)."""
        request_id = self._request_seq
        self._request_seq += 1
        return request_id

    def open_loop_attempt(self, name: str, payload: dict,
                          request_id: int, ctx: TraceContext
                          ) -> "tuple[dict, int, dict] | None":
        """One sealed round trip for an open-loop (surge) request.

        The surge scheduler owns arrival time, queueing, and completion
        on its event heap, so this path deliberately skips the
        closed-loop machinery -- no ``busy_until`` horizon push, no
        backoff charge, no retry loop.  Failure bookkeeping (strikes,
        quarantine, scope retry records) still runs through
        :meth:`_note_failure` inside :meth:`_attempt`, so chaos faults
        degrade the candidate set identically in both loops.

        Returns ``(result, service_cycles, breakdown)`` or ``None``.
        """
        body = dict(payload, request_id=request_id)
        out = self._attempt(name, body, request_id, ctx)
        if out is not None:
            self.health[name].strikes = 0
            self.routed[name] = self.routed.get(name, 0) + 1
            self.tracer.metrics.count("cluster_route", name)
            self.tracer.metrics.observe("service_cycles", name, out[1])
        return out

    def request(self, payload: dict) -> dict:
        """Route one closed-loop request and return the replica's reply.

        The request is retried (with failover across the healthy
        candidate set and deterministic backoff) until it completes or
        the bounded attempt budget is exhausted; only the latter raises.
        """
        if not self._links:
            raise SimulationError("no attested replicas admitted")
        request_id = self.allocate_request_id()
        # One trace context per logical request: trace_id is the
        # idempotent request id, span 0 is the root, each delivery
        # attempt is a child span.  Created unconditionally -- the
        # context rides the wire and must cost the same whether or not
        # a scope is observing.
        ctx = TraceContext(trace_id=request_id, span_id=0)
        klass = str(payload.get("op", "request"))
        self.scope.request_begin(ctx, klass)
        body = dict(payload, request_id=request_id)
        tried: set[str] = set()
        failures: list[str] = []
        for attempt in range(1, self.MAX_ATTEMPTS + 1):
            candidates = [n for n in self.healthy if n not in tried]
            if not candidates:
                tried.clear()
                candidates = self.healthy
            if not candidates:
                self.heal_quarantined()
                candidates = self.healthy
            if not candidates:
                break
            outstanding = {n: self.outstanding(n) for n in candidates}
            picked = self.policy.choose(body, candidates, outstanding)
            if attempt > 1:
                self._backoff(attempt)
            attempt_result = self._attempt(picked, body, request_id,
                                           ctx.child(attempt))
            if attempt_result is not None:
                result, service_cycles, breakdown = attempt_result
                self._complete(picked, service_cycles)
                self.scope.request_end(
                    ctx, replica=picked, attempts=attempt,
                    queue_wait=outstanding.get(picked, 0),
                    service_cycles=service_cycles, breakdown=breakdown)
                return result
            tried.add(picked)
            failures.append(picked)
        reason = (f"request {request_id} failed after {len(failures)} "
                  f"attempts (replicas tried: "
                  f"{', '.join(failures) or 'none'})")
        self.scope.request_failed(ctx, reason)
        raise SimulationError(reason)

    def _attempt(self, picked: str, body: dict, request_id: int,
                 ctx: TraceContext) -> "tuple[dict, int, dict] | None":
        """One sealed round trip to ``picked``; ``None`` on any failure."""
        link = self._links[picked]
        replica = self._replicas[picked]
        with self.tracer.span("cluster", "route",
                              args={"replica": picked,
                                    "policy": self.policy.name,
                                    "trace_id": ctx.trace_id,
                                    "span_id": ctx.span_id}):
            before = replica.ledger.snapshot()
            try:
                sealed = link.data.send(body)
            except SecurityViolation as refused:
                self._note_failure(picked, f"seal failed: {refused}",
                                   ctx=ctx)
                return None
            self.net.send(self.name, picked, encode_message(
                {"kind": "request", "request_id": request_id,
                 "record_hex": sealed.hex(),
                 "trace": ctx.as_wire()}))
            replica.pump()
            reply = self._reply_for(request_id, picked)
            if reply is None:
                self._note_failure(picked, "no reply", ctx=ctx)
                return None
            if reply.get("status") != "ok":
                self._note_failure(
                    picked, str(reply.get("reason", "refused")), ctx=ctx)
                return None
            try:
                result = link.data.receive(
                    bytes.fromhex(reply["record_hex"]))
            except (KeyError, ValueError) as malformed:
                self._note_failure(picked,
                                   f"malformed reply: {malformed}",
                                   ctx=ctx)
                return None
            except SecurityViolation as tampered:
                self._note_failure(picked,
                                   f"tampered reply: {tampered}",
                                   ctx=ctx)
                return None
            delta = replica.ledger.since(before)
            return result, delta.total, dict(delta.by_category)

    def _reply_for(self, request_id: int, picked: str) -> dict | None:
        """Drain this host's inbox for ``picked``'s reply to this attempt.

        Anything else in the inbox -- duplicated replies, delayed
        replies from a *different* replica tried earlier (same
        ``request_id``, wrong seal), late replies to requests that
        already completed, fabric garbage -- is discarded (and
        counted): the front end trusts only the sealed record inside a
        matching reply, never the envelope.
        """
        matched = None
        while self.net.pending(self.name):
            src, wire = self.net.recv(self.name)
            message = try_decode(wire)
            if message is not None and matched is None and \
                    src == picked and \
                    message.get("request_id") == request_id:
                matched = message
            else:
                self.tracer.metrics.count("frontend_discarded",
                                          "stale" if message is not None
                                          else "garbage")
        return matched

    def _complete(self, picked: str, service_cycles: int) -> None:
        """Success bookkeeping: schedule horizon, counters, metrics."""
        self.health[picked].strikes = 0
        now = self.ledger.total
        start = max(now, self.busy_until.get(picked, 0))
        self.busy_until[picked] = start + service_cycles
        self.routed[picked] = self.routed.get(picked, 0) + 1
        self.tracer.metrics.count("cluster_route", picked)
        self.tracer.metrics.observe("service_cycles", picked,
                                    service_cycles)

    # -- schedule accounting ---------------------------------------------

    def reset_schedule(self) -> None:
        """Start a fresh makespan epoch (e.g. after warm-up requests)."""
        self._epoch = self.ledger.total
        for name in self.busy_until:
            self.busy_until[name] = self._epoch

    def makespan_cycles(self) -> int:
        """Virtual-clock span from the epoch to the last completion."""
        horizon = max(self.busy_until.values(),
                      default=self.ledger.total)
        return max(horizon, self.ledger.total) - self._epoch

    def throughput_rps(self) -> float:
        """Aggregate requests/second over the current epoch's schedule."""
        cycles = self.makespan_cycles()
        total = sum(self.routed.values())
        if cycles == 0:
            return 0.0
        return total / (cycles / CLOCK_HZ)
