"""The fleet's load-balancing front end.

The front end is an ordinary (non-CVM) host: it terminates client
traffic and fans requests out to attested replicas over per-link data
channels.  It never sees replica plaintext beyond what the links carry
-- it *is* the relying party that established those links, so it holds
the initiator ends.

Scheduling uses a deterministic virtual clock derived from the cycle
ledgers: the front end's own ledger (which the fabric charges for every
message) is "now", and each replica has a ``busy_until`` horizon pushed
forward by the measured service cycles of every request routed to it.
``outstanding`` is how far a replica's horizon sits beyond now -- the
queue depth a real least-outstanding balancer tracks -- so aggregate
throughput is the makespan of the resulting schedule and scales with
replica count.

Three routing policies, selectable by name:

``round-robin``
    Rotate through admitted replicas.
``least-outstanding``
    Route to the replica with the smallest outstanding-work horizon
    (ties break to the lowest replica index).
``consistent-hash``
    SHA-256 hash ring with virtual nodes keyed by the request key --
    stable key → replica affinity under membership change.
"""

from __future__ import annotations

import typing

from ..crypto import sha256
from ..errors import SimulationError
from ..hw.cycles import CLOCK_HZ, CycleLedger
from ..trace.tracer import NULL_TRACER
from .attest import AttestedLink
from .net import InterHostNetwork, decode_message, encode_message

if typing.TYPE_CHECKING:
    from .replica import ClusterReplica


class RoutingPolicy:
    """Strategy interface: pick a replica name for one request."""

    name = "abstract"

    def choose(self, request: dict, candidates: list[str],
               outstanding: dict[str, int]) -> str:
        """Return the chosen replica name from ``candidates``."""
        raise NotImplementedError


class RoundRobin(RoutingPolicy):
    """Rotate through the admitted replica set."""

    name = "round-robin"

    def __init__(self):
        self._cursor = 0

    def choose(self, request, candidates, outstanding):
        """Pick the next replica in rotation, ignoring load."""
        picked = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return picked


class LeastOutstanding(RoutingPolicy):
    """Route to the replica with the least outstanding work."""

    name = "least-outstanding"

    def choose(self, request, candidates, outstanding):
        """Pick the idlest replica (name order breaks ties)."""
        return min(candidates, key=lambda n: (outstanding.get(n, 0), n))


class ConsistentHash(RoutingPolicy):
    """SHA-256 hash ring with virtual nodes, keyed by the request key."""

    name = "consistent-hash"
    VNODES = 16

    def __init__(self):
        self._ring: list[tuple[bytes, str]] = []
        self._members: tuple[str, ...] = ()

    def _rebuild(self, candidates: list[str]) -> None:
        self._members = tuple(candidates)
        self._ring = sorted(
            (sha256(f"{name}#{vnode}".encode()), name)
            for name in candidates for vnode in range(self.VNODES))

    def choose(self, request, candidates, outstanding):
        """Map the request key to its clockwise ring successor."""
        if tuple(candidates) != self._members:
            self._rebuild(candidates)
        point = sha256(str(request.get("key", "")).encode())
        for position, name in self._ring:
            if position >= point:
                return name
        return self._ring[0][1]


#: Policy registry for the CLI / benchmarks.
POLICIES: dict[str, type[RoutingPolicy]] = {
    RoundRobin.name: RoundRobin,
    LeastOutstanding.name: LeastOutstanding,
    ConsistentHash.name: ConsistentHash,
}


def make_policy(name: str) -> RoutingPolicy:
    """Instantiate a routing policy by registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise SimulationError(
            f"unknown routing policy {name!r}; choose from "
            f"{', '.join(sorted(POLICIES))}") from None


class FrontEnd:
    """Attestation-aware load balancer over the fleet fabric."""

    def __init__(self, net: InterHostNetwork, *, name: str = "frontend",
                 policy: "RoutingPolicy | str" = "least-outstanding",
                 tracer=None):
        self.net = net
        self.name = name
        self.policy = make_policy(policy) if isinstance(policy, str) \
            else policy
        self.tracer = tracer or NULL_TRACER
        #: The front end is a real host: the fabric charges its ledger.
        self.ledger = CycleLedger()
        net.attach(name, self.ledger)
        self._links: dict[str, AttestedLink] = {}
        self._replicas: dict[str, "ClusterReplica"] = {}
        #: Virtual-clock horizon (front-end ledger time) per replica.
        self.busy_until: dict[str, int] = {}
        self.routed: dict[str, int] = {}
        self._epoch = self.ledger.total

    # -- membership ------------------------------------------------------

    def admit(self, link: AttestedLink, replica: "ClusterReplica") -> None:
        """Add an attested replica to the routing set."""
        self._links[link.replica] = link
        self._replicas[link.replica] = replica
        self.busy_until.setdefault(link.replica, self.ledger.total)
        self.routed.setdefault(link.replica, 0)

    @property
    def members(self) -> list[str]:
        """Admitted replica names, in index order."""
        return sorted(self._links, key=lambda n: self._replicas[n].index)

    def link(self, name: str) -> AttestedLink:
        """The attested link for replica ``name`` (KeyError if not admitted)."""
        return self._links[name]

    def outstanding(self, name: str) -> int:
        """Cycles of queued work on ``name`` beyond the virtual now."""
        return max(0, self.busy_until.get(name, 0) - self.ledger.total)

    # -- request path ----------------------------------------------------

    def request(self, payload: dict) -> dict:
        """Route one closed-loop request and return the replica's reply."""
        if not self._links:
            raise SimulationError("no attested replicas admitted")
        candidates = self.members
        outstanding = {n: self.outstanding(n) for n in candidates}
        picked = self.policy.choose(payload, candidates, outstanding)
        link = self._links[picked]
        replica = self._replicas[picked]
        with self.tracer.span("cluster", "route",
                              args={"replica": picked,
                                    "policy": self.policy.name}):
            sealed = link.data.send(payload)
            before = replica.ledger.total
            self.net.send(self.name, picked, encode_message(
                {"kind": "request", "record_hex": sealed.hex()}))
            replica.pump()
            _src, wire = self.net.recv(self.name)
            reply = decode_message(wire)
            if reply.get("status") != "ok":
                raise SimulationError(
                    f"replica {picked} refused request: {reply}")
            service_cycles = replica.ledger.total - before
            result = link.data.receive(bytes.fromhex(reply["record_hex"]))
        now = self.ledger.total
        start = max(now, self.busy_until.get(picked, 0))
        self.busy_until[picked] = start + service_cycles
        self.routed[picked] = self.routed.get(picked, 0) + 1
        self.tracer.metrics.count("cluster_route", picked)
        self.tracer.metrics.observe("service_cycles", picked,
                                    service_cycles)
        return result

    # -- schedule accounting ---------------------------------------------

    def reset_schedule(self) -> None:
        """Start a fresh makespan epoch (e.g. after warm-up requests)."""
        self._epoch = self.ledger.total
        for name in self.busy_until:
            self.busy_until[name] = self._epoch

    def makespan_cycles(self) -> int:
        """Virtual-clock span from the epoch to the last completion."""
        horizon = max(self.busy_until.values(),
                      default=self.ledger.total)
        return max(horizon, self.ledger.total) - self._epoch

    def throughput_rps(self) -> float:
        """Aggregate requests/second over the current epoch's schedule."""
        cycles = self.makespan_cycles()
        total = sum(self.routed.values())
        if cycles == 0:
            return 0.0
        return total / (cycles / CLOCK_HZ)
