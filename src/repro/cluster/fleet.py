"""Fleet orchestration: boot N Veil CVMs, attest, route, audit.

:func:`run_cluster` is the whole story in one call -- boot the fleet,
run the relying-party handshakes (recording which replicas were
rejected), drive a closed-loop request stream through the front end, and
finish with a fleet-wide audit sweep.  The CLI (``repro cluster``), the
scaling benchmark, and the cluster tests all sit on top of it.

Determinism contract: given the same :class:`ClusterConfig`, two runs
produce identical ledgers, metrics, and trace event streams (the
multi-machine extension of the single-machine contract in
``docs/TRACING.md``).  The shared tracer is clocked off a
:class:`FleetClock` that sums every host's ledger, so cross-machine
event ordering is a pure function of simulated work.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from ..errors import AttestationError
from ..hv.attestation import platform_signing_key
from ..hw.cycles import CLOCK_HZ
from ..scope.collector import NULL_SCOPE
from .attest import AttestedLink, FleetVerifier, RejectedHandshake
from .auditor import FleetAuditor, FleetAuditReport
from .frontend import FrontEnd
from .net import InterHostNetwork, NetCostModel
from .replica import ClusterReplica, expected_fleet_measurement

if typing.TYPE_CHECKING:
    from ..trace.tracer import Tracer


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of one fleet run."""

    replicas: int = 2
    requests: int = 100
    workload: str = "memcached"
    policy: str = "least-outstanding"
    #: Host each replica's request handler inside a VeilS-ENC enclave.
    shielded: bool = False
    #: Replica indices booted from a tampered (backdoored) image.
    tampered: tuple[int, ...] = ()
    #: 90:10 GET:SET mix like memaslap; every ``set_every``-th op is a set.
    set_every: int = 10
    #: Distinct keys cycled through the request stream.
    keyspace: int = 16
    net_cost: NetCostModel = field(default_factory=NetCostModel)
    memory_bytes: int = 32 * 1024 * 1024
    num_cores: int = 2
    log_storage_pages: int = 64


class FleetClock:
    """Sums every host ledger: the fleet's monotonic virtual clock.

    Passed to :meth:`Tracer.attach_ledger` (anything with ``.total``
    qualifies) once all machines are booted, so one shared tracer gives
    a single coherent timeline across N CVMs plus the front-end hosts.

    Monotonicity is a *contract*, not an accident of the ledgers: a
    cold reboot rebuilds a replica's :class:`CycleLedger` from zero, and
    naively re-summing after the swap would step the merged clock
    backwards by everything the dead ledger had accrued -- handing the
    tracer out-of-order timestamps.  The clock therefore keeps a
    high-water mark: :meth:`replace` folds the outgoing sum into it
    before swapping ledgers, and :attr:`total` never reports below it.
    """

    def __init__(self, ledgers: list):
        self._ledgers = list(ledgers)
        self._high_water = 0

    def add(self, ledger) -> None:
        """Fold another host's ledger into the fleet timeline."""
        self._ledgers.append(ledger)

    def replace(self, old, new) -> None:
        """Swap a rebuilt host ledger in without stepping backwards.

        The pre-swap sum is captured as the clock's floor, so the new
        ledger's charges advance fleet time from where the old one
        stopped instead of rewinding it to the fleet minus one host.
        """
        now = sum(ledger.total for ledger in self._ledgers)
        if now > self._high_water:
            self._high_water = now
        self._ledgers = [new if ledger is old else ledger
                         for ledger in self._ledgers]

    @property
    def total(self) -> int:
        now = sum(ledger.total for ledger in self._ledgers)
        if now > self._high_water:
            self._high_water = now
        return self._high_water


@dataclass
class ClusterResult:
    """Everything a fleet run produced."""

    config: ClusterConfig
    requests_routed: int
    routed_by_replica: dict[str, int]
    rejected: list[RejectedHandshake]
    makespan_cycles: int
    throughput_rps: float
    handshake_cycles: dict[str, int]
    replica_cycles: dict[str, int]
    frontend_cycles: int
    audit: FleetAuditReport

    def summary_rows(self) -> list[dict]:
        """Per-replica table for the CLI / benchmark renderers."""
        rows = []
        for name in sorted(self.routed_by_replica):
            rows.append({
                "replica": name,
                "requests": self.routed_by_replica[name],
                "handshake_cycles": self.handshake_cycles.get(name, 0),
                "total_cycles": self.replica_cycles.get(name, 0),
            })
        return rows


class ClusterFleet:
    """A booted fleet: fabric + replicas + front end + auditor."""

    def __init__(self, config: ClusterConfig,
                 tracer: "Tracer | None" = None,
                 net: InterHostNetwork | None = None,
                 scope=None):
        from ..trace.tracer import default_tracer
        self.config = config
        if tracer is None:
            # Pick up the harness-wide tracer (VEIL_TRACE_DIR capture)
            # so fleet runs trace like single-machine runs do.
            tracer = default_tracer()
        self.tracer = tracer
        #: veil-scope observer; NULL_SCOPE (zero-cost no-op) by default.
        self.scope = scope if scope is not None else NULL_SCOPE
        #: ``net`` lets a caller supply a pre-built fabric -- the chaos
        #: harness wraps the fleet in a fault-injecting subclass this way.
        self.net = net if net is not None else InterHostNetwork(
            cost=config.net_cost, tracer=tracer)
        self.replicas: dict[str, ClusterReplica] = {}
        for index in range(config.replicas):
            replica = ClusterReplica(
                index, self.net, workload=config.workload,
                shielded=config.shielded,
                memory_bytes=config.memory_bytes,
                num_cores=config.num_cores,
                log_storage_pages=config.log_storage_pages,
                tracer=tracer, tampered=index in config.tampered)
            self.replicas[replica.name] = replica
        self.frontend = FrontEnd(self.net, policy=config.policy,
                                 tracer=tracer)
        self.frontend.scope = self.scope
        if scope is not None:
            # Wire the observer into the fabric too (a caller-supplied
            # net keeps its own scope when none is given here).
            self.net.scope = scope
        self.auditor = FleetAuditor(self.net, tracer=tracer)
        # Fleet-wide expected digest: what an *untampered* image of this
        # config measures to (the operator builds the image themselves).
        reference = expected_fleet_measurement(
            self.replicas["replica0"].config)
        self.verifier = FleetVerifier(
            expected_measurement=reference,
            platform_public=platform_signing_key().public,
            ledger=self.frontend.ledger, tracer=tracer)
        self.links: dict[str, AttestedLink] = {}
        self.rejected: list[RejectedHandshake] = []
        self.frontend.reattest = self._reattest
        clock = FleetClock([r.ledger for r in self.replicas.values()])
        clock.add(self.frontend.ledger)
        clock.add(self.auditor.ledger)
        self.clock = clock
        if tracer is not None:
            tracer.attach_ledger(clock)
        self.scope.attach_clock(clock)

    def _reattest(self, name: str) -> AttestedLink:
        """Front-end heal hook: fresh handshake with one replica.

        A crashed-and-restarted (or desynced) replica is only re-admitted
        through the same relying-party flow as initial admission; the new
        link replaces the old one everywhere the fleet tracks it.
        """
        replica = self.replicas[name]
        if not replica.alive:
            raise AttestationError(f"replica {name} is down")
        link = self.verifier.establish(replica, self.frontend.name)
        self.links[name] = link
        return link

    def reboot_replica(self, name: str) -> None:
        """Cold-restart ``name``: fresh CVM stack, fresh cycle ledger.

        Unlike the warm :meth:`ClusterReplica.restart` (same machine
        back up, ledger intact), a reboot rebuilds the whole stack, so
        the replica's ledger restarts from zero.  The fleet clock is
        told via :meth:`FleetClock.replace` so merged time stays
        monotone across the swap; the replica stays unattested until
        the front end's next heal sweep re-admits it.
        """
        replica = self.replicas[name]
        old_ledger = replica.ledger
        replica.reboot()
        self.clock.replace(old_ledger, replica.ledger)
        if self.tracer is not None:
            # Booting the fresh CVM re-attached the shared tracer to the
            # new machine's own (zeroed) ledger; put it back on fleet
            # time or every timestamp after the reboot rewinds.
            self.tracer.attach_ledger(self.clock)

    # -- phases ----------------------------------------------------------

    def attest_all(self) -> None:
        """Handshake every replica; admit the verified, record the rest."""
        for name in sorted(self.replicas,
                           key=lambda n: self.replicas[n].index):
            replica = self.replicas[name]
            try:
                link = self.verifier.establish(replica, self.frontend.name)
            except AttestationError as refused:
                self.rejected.append(
                    RejectedHandshake(replica=name, reason=str(refused)))
                continue
            self.links[name] = link
            self.frontend.admit(link, replica)

    def drive(self, requests: int) -> int:
        """Closed-loop client: issue ``requests`` ops through the front
        end and return how many were routed."""
        config = self.config
        for i in range(requests):
            key = f"key{i % config.keyspace}"
            if config.workload == "memcached":
                op = "set" if i % config.set_every == 0 else "get"
                payload = {"op": op, "key": key}
            else:
                payload = {"op": "insert", "key": key}
            self.frontend.request(payload)
        return sum(self.frontend.routed.values())

    def audit_all(self) -> FleetAuditReport:
        """Fleet-wide log pull + chain verification over attested links."""
        ordered = [self.links[n] for n in sorted(
            self.links, key=lambda n: self.replicas[n].index)]
        return self.auditor.sweep(ordered, self.replicas)

    def result(self, audit: FleetAuditReport) -> ClusterResult:
        """Assemble the run summary and publish fleet-level metrics."""
        tracer = self.tracer
        replica_cycles = {name: replica.ledger.total
                         for name, replica in self.replicas.items()}
        if tracer is not None:
            for name, total in sorted(replica_cycles.items()):
                tracer.metrics.observe("replica_total_cycles", name, total)
            tracer.metrics.observe("frontend_total_cycles", "frontend",
                                   self.frontend.ledger.total)
        return ClusterResult(
            config=self.config,
            requests_routed=sum(self.frontend.routed.values()),
            routed_by_replica=dict(self.frontend.routed),
            rejected=list(self.rejected),
            makespan_cycles=self.frontend.makespan_cycles(),
            throughput_rps=self.frontend.throughput_rps(),
            handshake_cycles={name: link.handshake_cycles
                              for name, link in self.links.items()},
            replica_cycles=replica_cycles,
            frontend_cycles=self.frontend.ledger.total,
            audit=audit)


def run_cluster(config: ClusterConfig | None = None, *,
                tracer: "Tracer | None" = None,
                scope=None) -> ClusterResult:
    """Boot, attest, serve, and audit one fleet run."""
    config = config or ClusterConfig()
    fleet = ClusterFleet(config, tracer=tracer, scope=scope)
    fleet.attest_all()
    fleet.frontend.reset_schedule()
    fleet.drive(config.requests)
    audit = fleet.audit_all()
    return fleet.result(audit)


def cycles_to_seconds(cycles: int) -> float:
    """Seconds at the simulator's nominal clock."""
    return cycles / CLOCK_HZ
