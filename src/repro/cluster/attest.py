"""Attestation-gated secure links between the front end and replicas.

The front end is the fleet's *relying party*: before any request is
routed to a replica CVM, it demands a PSP-signed attestation report over
the inter-host fabric, checks the launch measurement against the fleet's
expected-digest policy, and only then completes the DH handshake that
derives the per-link keys (the SNPGuard / e-vTPM verification flow, run
once per replica).  A replica whose report fails verification -- wrong
digest, forged signature, wrong requesting VMPL -- is never admitted to
the routing set; the rejection is a recorded trace event.

Each admitted link carries two :class:`~repro.crypto.SecureChannel`
instances derived from the same attested DH secret:

* the **control channel** -- the exact key VeilMon holds
  (``user_channel``), used for sealed log export and other
  monitor-mediated operations;
* the **data channel** -- a domain-separated derivation
  (``SHA-256(key || "veil-fleet-data")``) provisioned to the service
  replica, so high-rate request traffic cannot desynchronize the control
  channel's sequence numbers.

Keys are per-link: every replica handshake uses a fresh relying-party DH
keypair, so a record sealed for one replica is garbage on every other
link (tested in ``tests/crypto``).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from ..crypto import SecureChannel, sha256
from ..errors import AttestationError
from ..hv.attestation import AttestationReport, RemoteUser
from ..hw import VMPL_MON
from ..hw.cycles import CostModel
from .net import encode_message, try_decode

if typing.TYPE_CHECKING:
    from ..hw.cycles import CycleLedger
    from .replica import ClusterReplica

#: Domain-separation label folded into the data-plane key derivation.
DATA_KEY_LABEL = b"veil-fleet-data"

#: Anti-replay window (in records) on every fleet channel.  The fabric
#: may drop or reorder traffic under fault injection, so links use a
#: DTLS-style sliding window instead of the strict in-order mode: a
#: retried request re-sealed under a fresh counter is accepted even
#: though earlier counters were lost, while true replays inside the
#: window are still refused.
CHANNEL_WINDOW = 64


def derive_data_key(link_key: bytes) -> bytes:
    """Domain-separated data-plane key from the attested link key."""
    return sha256(link_key + DATA_KEY_LABEL)


@dataclass
class AttestedLink:
    """One verified front-end <-> replica association."""

    replica: str                    # endpoint name on the fabric
    measurement_hex: str
    control: SecureChannel          # initiator end of VeilMon's channel
    data: SecureChannel             # initiator end of the data channel
    handshake_cycles: int = 0


@dataclass
class RejectedHandshake:
    """A replica that failed attestation and was refused admission."""

    replica: str
    reason: str


@dataclass
class FleetVerifier:
    """Relying-party policy + handshake driver for the whole fleet.

    ``expected_measurement`` is the digest of the boot image the fleet
    operator built; ``platform_public`` is the AMD platform signing key.
    Verification work (signature check, digest comparison, key
    derivation) is charged to the verifier's own ledger -- the front end
    is a real host with real CPUs.
    """

    expected_measurement: bytes
    platform_public: object
    ledger: "CycleLedger"
    cost: CostModel = field(default_factory=CostModel)
    tracer: object = None

    #: Relying-party bookkeeping around one handshake (nonce management,
    #: policy lookup, session install).
    HANDSHAKE_BASE_CYCLES = 20_000

    @staticmethod
    def _expect_reply(net, frontend_name: str, replica_name: str) -> dict:
        """Pop the replica's next well-formed handshake reply.

        Re-attestation after a crash can find the relying party's inbox
        holding stale replies from the pre-crash exchange (or fabric
        garbage under fault injection); those are discarded rather than
        misparsed as the handshake response.
        """
        while net.pending(frontend_name):
            src, wire = net.recv(frontend_name)
            if src != replica_name:
                continue
            reply = try_decode(wire)
            if reply is None or "request_id" in reply:
                continue      # garbage, or a stale data-path envelope
            return reply
        raise AttestationError(
            f"replica {replica_name} sent no handshake reply")

    # The handshake is split into three relying-party stages separated
    # by replica pumps.  :meth:`establish` runs them back to back for
    # the classic sequential flow; veil-warp interleaves stages across
    # the fleet (stage 1 for every replica, one batched pump, stage 2
    # for every replica, ...) so replica-side report generation runs in
    # parallel workers.  Each stage performs exactly the charges the
    # inline flow performed at that point, so the split never moves a
    # cycle between hosts.

    def handshake_begin(self, net, frontend_name: str,
                        replica_name: str) -> RemoteUser:
        """Stage 1: mint a fresh relying-party DH keypair and demand an
        attestation report from the replica."""
        user = RemoteUser(self.expected_measurement, self.platform_public)
        net.send(frontend_name, replica_name,
                 # veil-lint: allow(trace-context) -- control-plane frame: attestation precedes any request, so there is no trace context to carry
                 encode_message({"kind": "attest"}))
        return user

    def handshake_verify(self, net, frontend_name: str, replica_name: str,
                         user: RemoteUser, tracer) -> tuple:
        """Stage 2: consume the report reply, verify it, and send our DH
        public value so VeilMon derives the link key.

        Returns ``(report, key)``; raises :class:`AttestationError` on
        any verification failure (recorded as a rejection event).
        """
        reply = self._expect_reply(net, frontend_name, replica_name)
        report_dict = reply.get("report")
        if not isinstance(report_dict, dict):
            raise AttestationError(
                f"replica {replica_name} returned no attestation "
                "report")
        try:
            report = AttestationReport(
                measurement=bytes.fromhex(
                    report_dict["measurement_hex"]),
                requester_vmpl=int(report_dict["requester_vmpl"]),
                report_data=bytes.fromhex(
                    report_dict["report_data_hex"]),
                signature=bytes.fromhex(report_dict["signature_hex"]))
            dh_public = bytes.fromhex(report_dict["dh_public_hex"])
        except (KeyError, ValueError, TypeError) as bad:
            raise AttestationError(
                f"replica {replica_name} sent a malformed "
                f"attestation report: {bad}") from None
        # Relying-party verification cost: one RSA verify, hashing the
        # report body and the DH binding, plus session bookkeeping.
        self.ledger.charge("crypto", self.cost.signature_verify +
                           self.cost.sha256_cost(len(dh_public)) +
                           self.HANDSHAKE_BASE_CYCLES)
        try:
            key = user.channel_key_from_report(
                report, dh_public, require_vmpl=VMPL_MON)
        except AttestationError as refused:
            tracer.instant("cluster", "handshake_rejected",
                           args={"replica": replica_name,
                                 "reason": str(refused)})
            tracer.metrics.count("handshake_rejected", replica_name)
            raise
        # Complete the handshake: hand VeilMon our DH public value so
        # it derives the same key, then provision the data channel.
        # veil-lint: allow(trace-context) -- control-plane frame: channel setup precedes any request, so there is no trace context to carry
        net.send(frontend_name, replica_name, encode_message({
            "kind": "channel_init",
            "peer_public_hex": user.dh.public.to_bytes(256,
                                                       "big").hex()}))
        return report, key

    def handshake_complete(self, net, frontend_name: str,
                           replica_name: str, report: AttestationReport,
                           key: bytes,
                           handshake_cycles: int) -> AttestedLink:
        """Stage 3: consume the channel-install acknowledgement and
        build the admitted link."""
        install = self._expect_reply(net, frontend_name, replica_name)
        if install.get("status") != "ok":
            raise AttestationError(
                f"replica {replica_name} refused channel install")
        return AttestedLink(
            replica=replica_name,
            measurement_hex=report.measurement.hex(),
            control=SecureChannel(key, role="initiator",
                                  window=CHANNEL_WINDOW),
            data=SecureChannel(derive_data_key(key),
                               role="initiator",
                               window=CHANNEL_WINDOW),
            handshake_cycles=handshake_cycles)

    def establish(self, replica: "ClusterReplica",
                  frontend_name: str) -> AttestedLink:
        """Run the full attestation handshake with one replica.

        Raises :class:`AttestationError` on any verification failure;
        the caller records the rejection and excludes the replica.
        """
        net = replica.net
        tracer = self.tracer or replica.tracer
        before_fe = self.ledger.total
        before_replica = replica.ledger.total
        with tracer.span("cluster", "handshake",
                         args={"replica": replica.name}):
            user = self.handshake_begin(net, frontend_name, replica.name)
            replica.pump()
            report, key = self.handshake_verify(
                net, frontend_name, replica.name, user, tracer)
            replica.pump()
            handshake_cycles = ((self.ledger.total - before_fe) +
                                (replica.ledger.total - before_replica))
            link = self.handshake_complete(
                net, frontend_name, replica.name, report, key,
                handshake_cycles)
        tracer.metrics.observe("handshake_cycles", replica.name,
                               handshake_cycles)
        tracer.metrics.count("handshake_ok", replica.name)
        return link
