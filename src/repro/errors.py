"""Exception hierarchy shared across the Veil reproduction.

The simulator models hardware faults as Python exceptions.  Two kinds of
failure matter architecturally:

* :class:`NestedPageFault` -- raised by the RMP / page-table checks when a
  (VMPL, CPL) context touches memory it is not allowed to.  In SEV-SNP a
  guest-side RMP violation is not recoverable by the guest; the paper's
  observable defence is that "the CVM halts with continuous #NPFs".  The
  machine model converts an unhandled #NPF into :class:`CvmHalted`.

* :class:`CvmHalted` -- the terminal state of a halted confidential VM.
  Security tests assert this is raised when an attack is attempted.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SimulationError(ReproError):
    """The simulation itself was driven incorrectly (a harness bug)."""


class VeilFault(ReproError):
    """Common base for architectural fault outcomes.

    Groups the failures that correspond to the paper's threat model:
    hardware-enforced faults (:class:`HardwareFault` and subclasses) and
    the fail-stop terminal state (:class:`CvmHalted`).  Catching
    ``VeilFault`` broadly outside a test harness hides a defence firing,
    which is why veil-lint's ``exception-hygiene`` rule treats it as a
    broad exception class.
    """


class HardwareFault(VeilFault):
    """Base class for faults raised by the simulated SEV-SNP hardware."""


class NestedPageFault(HardwareFault):
    """#NPF: an access violated RMP or validated-page rules.

    Carries enough context for tests to assert on *why* the fault fired.
    """

    def __init__(self, message: str, *, gpa: int | None = None,
                 vmpl: int | None = None, access: str | None = None):
        super().__init__(message)
        self.gpa = gpa
        self.vmpl = vmpl
        self.access = access


class GeneralProtectionFault(HardwareFault):
    """#GP: a privileged operation was attempted from an unprivileged CPL."""


class InvalidInstruction(HardwareFault):
    """An instruction was executed in a context where it is architecturally
    undefined (e.g. ``RMPADJUST`` targeting a more-privileged VMPL)."""


class CvmHalted(VeilFault):
    """The confidential VM has halted (typically due to repeated #NPFs).

    This is the paper's documented fail-stop defence outcome.
    """

    def __init__(self, message: str, *, cause: Exception | None = None):
        super().__init__(message)
        self.cause = cause


class AttestationError(ReproError):
    """A measurement or signature did not verify during attestation."""


class SecurityViolation(ReproError):
    """A software-level security check rejected a request (e.g. VeilMon's
    pointer sanitization, module signature check, enclave invariants)."""


class EnclaveError(ReproError):
    """Enclave lifecycle or runtime failure (non-security)."""


class SdkError(ReproError):
    """Enclave SDK failure, e.g. an unsupported syscall kills the enclave."""


class KernelError(ReproError):
    """Guest kernel error that maps to an errno-style failure."""

    def __init__(self, errno: int, message: str = ""):
        super().__init__(message or f"errno {errno}")
        self.errno = errno
