"""veil-scope: fleet-wide distributed tracing + request telemetry.

Where :mod:`repro.trace` records what happens *inside* one machine,
``repro.scope`` follows one request *across* machines: a
:class:`TraceContext` (``trace_id`` / ``span_id`` / parent) rides every
fabric envelope from the front end through the untrusted network into a
replica CVM and back, and a :class:`FleetScope` collector turns the
journey into request-scoped telemetry — arrival, queue wait, retries,
serving replica, per-layer cycle breakdown — feeding HDR-style latency
histograms with exact p50/p95/p99 per workload class.

Design rules (the determinism contract, extended fleet-wide):

1. **Context is always on.**  The trace-context envelope field is
   attached to fabric messages unconditionally, whether or not anyone
   is observing: envelope bytes feed the network cost model, so an
   optional field would change cycle charges.  Scope on/off only swaps
   the *observer* (:class:`FleetScope` vs :data:`NULL_SCOPE`); ledgers
   and per-machine traces stay byte-identical either way (a tested
   invariant, ``tests/trace/test_scope_parity.py``).
2. **Virtual clock.**  Every scope timestamp reads the
   :class:`~repro.cluster.fleet.FleetClock` (the sum of all host
   ledgers), so merged timelines are a pure function of simulated work.
3. **Leaf layer.**  ``scope`` imports only ``trace`` and ``errors``; it
   peeks at wire bytes with its own envelope decoder rather than
   reaching up into ``cluster``.  The layers above (cluster, chaos,
   bench, CLI) push observations *down* into it.

See ``docs/OBSERVABILITY.md`` ("veil-scope") for the merged-timeline
format and how to read it.
"""

from .collector import (NULL_SCOPE, FaultEvent, FleetScope, HopEvent,
                        NullScope, RequestRecord)
from .context import (TRACE_KEY, TraceContext, attach_context,
                      extract_context, peek_context)
from .export import (dumps_merged_trace, merged_chrome_trace,
                     render_scope_summary, scope_snapshot,
                     write_merged_trace, write_scope_json)

__all__ = [
    "TraceContext", "TRACE_KEY", "attach_context", "extract_context",
    "peek_context",
    "FleetScope", "NullScope", "NULL_SCOPE", "RequestRecord",
    "HopEvent", "FaultEvent",
    "merged_chrome_trace", "dumps_merged_trace", "write_merged_trace",
    "scope_snapshot", "write_scope_json", "render_scope_summary",
]
