"""Merged fleet exporter: one Perfetto timeline for the whole fleet.

The per-machine exporter (:func:`repro.trace.export.chrome_trace`)
already merges every CVM's spans onto the fleet clock — all machines
share one tracer.  This module layers the *cross-machine* story on top:

* ``pid 90 fleet:requests`` — one async span (``ph`` ``b``/``e``, the
  Chrome format's cross-thread span) per logical request, ``id``-ed by
  its ``trace_id``, with retry instants inline;
* ``pid 91 fleet:fabric`` — an instant per fabric hop, carrying the
  peeked trace context so a request's crossings are searchable by id;
* ``pid 92 fleet:chaos`` — fault instants: drop/corrupt/delay/dup from
  the chaotic fabric plus the crash/restart/quarantine instants lifted
  from the shared tracer, so every injected misbehavior sits inline on
  the same timeline as the requests it disturbed.

Everything inherits the determinism contract: the merged export of two
identical runs is byte-identical.
"""

from __future__ import annotations

import json
import typing

from ..trace.export import chrome_trace

if typing.TYPE_CHECKING:
    from .collector import FleetScope

#: Synthetic process ids for the fleet-level tracks (the per-machine
#: tracks use vcpu indices and 99 for unattributed; these sit above).
REQUESTS_TRACK = 90
FABRIC_TRACK = 91
CHAOS_TRACK = 92

#: Tracer instants re-emitted onto the chaos track: every ``chaos``
#: category instant, plus the front end's quarantine marker.
_LIFTED_CLUSTER_INSTANTS = ("replica_quarantined", "reattest_failed")


def _track_metadata() -> list:
    """Name the three fleet-level tracks."""
    events = []
    for pid, name in ((REQUESTS_TRACK, "fleet:requests"),
                      (FABRIC_TRACK, "fleet:fabric"),
                      (CHAOS_TRACK, "fleet:chaos")):
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": name}})
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": 0, "args": {"name": name}})
    return events


def _request_events(scope: "FleetScope") -> list:
    """Async begin/end pair + retry instants per request record."""
    events = []
    for record in scope.records:
        ident = str(record.trace_id)
        name = f"request:{record.klass}"
        events.append({
            "ph": "b", "cat": "fleet", "id": ident, "name": name,
            "pid": REQUESTS_TRACK, "tid": 0, "ts": record.arrival,
            "args": {"trace_id": record.trace_id,
                     "class": record.klass}})
        for ts, replica, reason in record.retries:
            events.append({
                "ph": "i", "cat": "fleet", "s": "t",
                "name": f"retry:{replica}",
                "pid": REQUESTS_TRACK, "tid": 0, "ts": ts,
                "args": {"trace_id": record.trace_id,
                         "reason": reason}})
        events.append({
            "ph": "e", "cat": "fleet", "id": ident, "name": name,
            "pid": REQUESTS_TRACK, "tid": 0, "ts": record.end,
            "args": {"trace_id": record.trace_id,
                     "status": record.status,
                     "replica": record.replica,
                     "attempts": record.attempts,
                     "latency": record.latency,
                     "queue_wait": record.queue_wait,
                     "service_cycles": record.service_cycles}})
    return events


def _hop_events(scope: "FleetScope") -> list:
    """One instant per fabric crossing."""
    events = []
    for hop in scope.hops:
        args = {"bytes": hop.nbytes}
        if hop.trace_id is not None:
            args["trace_id"] = hop.trace_id
            args["span_id"] = hop.span_id
        events.append({
            "ph": "i", "cat": "fleet", "s": "t",
            "name": f"{hop.src}->{hop.dst}",
            "pid": FABRIC_TRACK, "tid": 0, "ts": hop.ts, "args": args})
    return events


def _fault_events(scope: "FleetScope", tracer) -> list:
    """Scope-recorded faults + chaos instants lifted from the tracer."""
    events = []
    for fault in scope.faults:
        args = {"subject": fault.subject}
        if fault.detail:
            args["detail"] = fault.detail
        events.append({
            "ph": "i", "cat": "fleet", "s": "t",
            "name": f"fault:{fault.kind}",
            "pid": CHAOS_TRACK, "tid": 0, "ts": fault.ts, "args": args})
    for event in tracer.events:
        if event.phase != "i":
            continue
        if event.category != "chaos" and not (
                event.category == "cluster" and
                event.name in _LIFTED_CLUSTER_INSTANTS):
            continue
        events.append({
            "ph": "i", "cat": "fleet", "s": "t",
            "name": f"fault:{event.name}",
            "pid": CHAOS_TRACK, "tid": 0, "ts": event.ts,
            "args": event.args_dict()})
    return events


def scope_snapshot(scope: "FleetScope") -> dict:
    """Deterministic JSON snapshot of everything the scope collected."""
    return {
        "requests": [record.as_dict() for record in scope.records],
        "max_in_flight": scope.max_in_flight,
        "hops": len(scope.hops),
        "faults": [{"ts": f.ts, "kind": f.kind, "subject": f.subject,
                    "detail": f.detail} for f in scope.faults],
        "metrics": scope.metrics.dump(),
    }


def merged_chrome_trace(tracer, scope: "FleetScope") -> dict:
    """The per-machine trace plus the fleet-level tracks, one object."""
    trace = chrome_trace(tracer)
    events = trace["traceEvents"]
    events.extend(_track_metadata())
    events.extend(_request_events(scope))
    events.extend(_hop_events(scope))
    events.extend(_fault_events(scope, tracer))
    trace["otherData"]["scope"] = scope_snapshot(scope)
    return trace


def dumps_merged_trace(tracer, scope: "FleetScope") -> str:
    """Serialize deterministically (sorted keys, no whitespace)."""
    return json.dumps(merged_chrome_trace(tracer, scope),
                      sort_keys=True, separators=(",", ":"))


def write_merged_trace(tracer, scope: "FleetScope", path) -> None:
    """Write the merged fleet Chrome trace-event JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_merged_trace(tracer, scope))
        fh.write("\n")


def write_scope_json(scope: "FleetScope", path) -> None:
    """Write the scope snapshot (metrics + records) to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(scope_snapshot(scope), fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_scope_summary(scope: "FleetScope") -> str:
    """Human-readable fleet telemetry report."""
    lines = ["veil-scope fleet telemetry"]
    ok = [r for r in scope.records if r.status == "ok"]
    failed = [r for r in scope.records if r.status == "failed"]
    retried = sum(len(r.retries) for r in scope.records)
    lines.append(f"  requests: {len(ok):,} served, {len(failed):,} "
                 f"failed, {retried:,} retried attempts, "
                 f"{len(scope.hops):,} fabric hops")

    latencies = scope.metrics.latencies_named("latency")
    if latencies:
        lines.append("")
        lines.append(f"  {'class':<10} {'count':>7} {'p50 cyc':>12} "
                     f"{'p95 cyc':>12} {'p99 cyc':>12} {'max cyc':>12}")
        for klass in sorted(latencies):
            hist = latencies[klass]
            pct = hist.percentiles()
            lines.append(
                f"  {klass:<10} {hist.count:>7,} {pct['p50']:>12,} "
                f"{pct['p95']:>12,} {pct['p99']:>12,} {hist.max:>12,}")

    waits = scope.metrics.latencies_named("queue_wait")
    if waits:
        lines.append("")
        lines.append(f"  {'queue wait':<10} {'count':>7} {'p50 cyc':>12} "
                     f"{'p95 cyc':>12} {'p99 cyc':>12} {'max cyc':>12}")
        for klass in sorted(waits):
            hist = waits[klass]
            pct = hist.percentiles()
            lines.append(
                f"  {klass:<10} {hist.count:>7,} {pct['p50']:>12,} "
                f"{pct['p95']:>12,} {pct['p99']:>12,} {hist.max:>12,}")

    layers = scope.metrics.counters_named("layer_cycles")
    if layers:
        total = sum(layers.values())
        lines.append("")
        lines.append(f"  {'layer (served attempts)':<24} "
                     f"{'cycles':>14} {'share':>8}")
        for category, cycles in sorted(layers.items(),
                                       key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {category:<24} {cycles:>14,} "
                         f"{cycles / total:>8.1%}")

    served = scope.metrics.counters_named("served_by")
    if served:
        lines.append("")
        lines.append("  served by: " + ", ".join(
            f"{name}={served[name]:,}" for name in sorted(served)))

    faults = scope.metrics.counters_named("faults")
    if faults:
        lines.append("  faults: " + ", ".join(
            f"{kind}={faults[kind]:,}" for kind in sorted(faults)))
    return "\n".join(lines)
