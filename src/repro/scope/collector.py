"""The fleet-wide observer: request records, hops, faults, latencies.

A :class:`FleetScope` is attached to a fleet run (``ClusterFleet`` wires
it into the front end and the fabric) and collects three streams, all
timestamped on the fleet's virtual clock:

* **Request records** — one :class:`RequestRecord` per logical request:
  arrival, completion, queue wait at route time, retries (with reasons),
  the serving replica, the measured service cycles, and the per-layer
  cycle breakdown of the successful attempt.  Each completed record
  feeds the registry's HDR-style latency histograms
  (``latency/<class>``, ``queue_wait/<class>``, ``service/<class>``) so
  exact p50/p95/p99 per workload class fall out of
  :meth:`FleetScope.metrics`.
* **Fabric hops** — one :class:`HopEvent` per message the fabric
  delivered, with the trace context peeked from the wire, so the merged
  timeline shows every fabric crossing of a request.
* **Fault events** — one :class:`FaultEvent` per injected misbehavior
  (drop / corrupt / delay / dup from the chaotic fabric, plus anything
  a runner reports), inline on the same timeline.

The collector only *observes*: it charges nothing to any ledger and is
never consulted by the request path.  :class:`NullScope` is the
zero-cost disabled twin (the repo-wide null-object pattern — see
:data:`~repro.trace.NULL_TRACER`).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from ..trace.metrics import NULL_METRICS, MetricsRegistry
from .context import peek_context

if typing.TYPE_CHECKING:
    from .context import TraceContext


@dataclass
class RequestRecord:
    """Request-scoped telemetry for one logical request."""

    trace_id: int
    klass: str                 # workload class ("get", "set", "insert")
    arrival: int               # fleet-clock cycles at request_begin
    end: int = 0               # fleet-clock cycles at completion
    status: str = "open"       # "open" | "ok" | "failed"
    replica: str = ""          # who served it (empty until completion)
    attempts: int = 0          # delivery attempts (1 = no retry)
    queue_wait: int = 0        # outstanding cycles on the routed replica
    service_cycles: int = 0    # replica-side cycles of the winning attempt
    #: (fleet-clock ts, replica, reason) per failed attempt.
    retries: list = field(default_factory=list)
    #: Ledger-category -> cycles delta of the winning attempt.
    breakdown: dict = field(default_factory=dict)
    reason: str = ""           # failure reason when status == "failed"

    @property
    def latency(self) -> int:
        """End-to-end fleet-clock cycles (0 while still open)."""
        return max(0, self.end - self.arrival)

    def as_dict(self) -> dict:
        """Deterministic plain-data form for snapshots."""
        return {
            "trace_id": self.trace_id,
            "class": self.klass,
            "arrival": self.arrival,
            "end": self.end,
            "latency": self.latency,
            "status": self.status,
            "replica": self.replica,
            "attempts": self.attempts,
            "queue_wait": self.queue_wait,
            "service_cycles": self.service_cycles,
            "retries": [list(entry) for entry in self.retries],
            "breakdown": dict(sorted(self.breakdown.items())),
            "reason": self.reason,
        }


@dataclass(frozen=True)
class HopEvent:
    """One message crossing the fabric."""

    ts: int                    # fleet-clock cycles at delivery
    src: str
    dst: str
    nbytes: int
    trace_id: "int | None"     # peeked from the wire, if carried
    span_id: "int | None"


@dataclass(frozen=True)
class FaultEvent:
    """One injected (or detected) fleet misbehavior."""

    ts: int                    # fleet-clock cycles when it struck
    kind: str                  # "drop", "corrupt", "delay", "dup", ...
    subject: str               # link ("a->b") or replica name
    detail: str = ""


class FleetScope:
    """Collects fleet-wide request telemetry on the virtual clock."""

    enabled = True

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.records: list[RequestRecord] = []
        self.hops: list[HopEvent] = []
        self.faults: list[FaultEvent] = []
        #: trace_id -> in-flight record (insertion-ordered).
        self._open: dict[int, RequestRecord] = {}
        #: Concurrency gauge: requests begun but not yet ended/failed.
        #: Under the closed-loop driver this never exceeds 1; the surge
        #: harness is what pushes it into the thousands.
        self.in_flight = 0
        self.max_in_flight = 0
        self._clock: typing.Callable[[], int] = lambda: 0

    # -- clock ------------------------------------------------------------

    def attach_clock(self, clock) -> None:
        """Clock this scope off the fleet clock (anything with ``.total``)."""
        self._clock = lambda: clock.total

    def now(self) -> int:
        """Current fleet virtual time (cycles)."""
        return self._clock()

    # -- request lifecycle (front-end hooks) ------------------------------

    def request_begin(self, ctx: "TraceContext", klass: str) -> None:
        """A logical request entered the front end."""
        self._open[ctx.trace_id] = RequestRecord(
            trace_id=ctx.trace_id, klass=klass, arrival=self.now())
        self.in_flight += 1
        if self.in_flight > self.max_in_flight:
            self.max_in_flight = self.in_flight

    def retry(self, ctx: "TraceContext", replica: str,
              reason: str) -> None:
        """One delivery attempt failed; the front end will retry."""
        record = self._open.get(ctx.trace_id)
        if record is None:
            return
        record.retries.append((self.now(), replica, reason))
        self.metrics.count("retries", record.klass)

    def request_end(self, ctx: "TraceContext", *, replica: str,
                    attempts: int, queue_wait: int, service_cycles: int,
                    breakdown: "dict | None" = None) -> None:
        """The request completed; finalize and feed the histograms."""
        record = self._open.pop(ctx.trace_id, None)
        if record is None:
            return
        self.in_flight -= 1
        record.end = self.now()
        record.status = "ok"
        record.replica = replica
        record.attempts = attempts
        record.queue_wait = queue_wait
        record.service_cycles = service_cycles
        if breakdown:
            record.breakdown = dict(breakdown)
            for category in sorted(record.breakdown):
                self.metrics.count("layer_cycles", category,
                                   record.breakdown[category])
        self.records.append(record)
        klass = record.klass
        self.metrics.count("requests", klass)
        self.metrics.count("served_by", replica)
        self.metrics.record_latency("latency", klass, record.latency)
        self.metrics.record_latency("queue_wait", klass, queue_wait)
        self.metrics.record_latency("service", klass, service_cycles)

    def request_failed(self, ctx: "TraceContext", reason: str) -> None:
        """The request exhausted its retry budget."""
        record = self._open.pop(ctx.trace_id, None)
        if record is None:
            return
        self.in_flight -= 1
        record.end = self.now()
        record.status = "failed"
        record.reason = reason
        record.attempts = len(record.retries)
        self.records.append(record)
        self.metrics.count("requests_failed", record.klass)

    # -- fabric + fault hooks ---------------------------------------------

    def on_message(self, src: str, dst: str, payload: bytes) -> None:
        """The fabric delivered one message (called by the network)."""
        ctx = peek_context(payload)
        self.hops.append(HopEvent(
            ts=self.now(), src=src, dst=dst, nbytes=len(payload),
            trace_id=ctx.trace_id if ctx else None,
            span_id=ctx.span_id if ctx else None))
        self.metrics.count("hops", f"{src}->{dst}")

    def on_fault(self, kind: str, subject: str, detail: str = "") -> None:
        """An injected fault struck (called by the chaotic fabric)."""
        self.faults.append(FaultEvent(
            ts=self.now(), kind=kind, subject=subject, detail=detail))
        self.metrics.count("faults", kind)

    # -- queries ----------------------------------------------------------

    def completed(self) -> list[RequestRecord]:
        """Records of requests that finished (ok or failed)."""
        return list(self.records)

    def percentiles(self, klass: str,
                    points=(50, 95, 99)) -> "dict | None":
        """Exact latency percentiles for one workload class, or None."""
        hist = self.metrics.latency("latency", klass)
        if hist is None:
            return None
        return hist.percentiles(points)


class NullScope:
    """Scope disabled: every hook is a no-op (the default observer)."""

    enabled = False
    metrics = NULL_METRICS
    records: tuple = ()
    hops: tuple = ()
    faults: tuple = ()
    in_flight = 0
    max_in_flight = 0

    def attach_clock(self, clock) -> None:
        """No-op (scope disabled)."""

    def now(self) -> int:
        """Always zero (no clock attached)."""
        return 0

    def request_begin(self, ctx, klass) -> None:
        """No-op (scope disabled)."""

    def retry(self, ctx, replica, reason) -> None:
        """No-op (scope disabled)."""

    def request_end(self, ctx, *, replica, attempts, queue_wait,
                    service_cycles, breakdown=None) -> None:
        """No-op (scope disabled)."""

    def request_failed(self, ctx, reason) -> None:
        """No-op (scope disabled)."""

    def on_message(self, src, dst, payload) -> None:
        """No-op (scope disabled)."""

    def on_fault(self, kind, subject, detail="") -> None:
        """No-op (scope disabled)."""

    def completed(self) -> list:
        """Always empty."""
        return []

    def percentiles(self, klass, points=(50, 95, 99)) -> None:
        """Always None."""
        return None


#: Process-wide shared no-op scope (stateless, safe to share).
NULL_SCOPE = NullScope()
