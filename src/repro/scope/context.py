"""Trace-context propagation over the fleet fabric.

One logical request gets one :class:`TraceContext`: ``trace_id`` is the
front end's idempotent ``request_id`` (unique per run), ``span_id`` 0 is
the root (the logical request), and each delivery attempt is a child
span whose ``span_id`` is the attempt number.  The context travels in
fabric envelopes under the :data:`TRACE_KEY` field — the fleet analog of
a W3C ``traceparent`` header — and replicas echo the inbound context on
their replies, so a merged timeline can link front-end route spans,
fabric hops, and replica serve spans end to end.

The wire form is deliberately boring (three integers in a dict) and is
attached *unconditionally*: envelope bytes are charged by the network
cost model, so the field must cost the same whether or not a collector
is watching.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

#: Envelope field carrying the wire form of a :class:`TraceContext`.
TRACE_KEY = "trace"


@dataclass(frozen=True)
class TraceContext:
    """Causal identity of one request (or one attempt of it)."""

    trace_id: int
    span_id: int = 0
    parent_id: "int | None" = None

    def child(self, span_id: int) -> "TraceContext":
        """A child context (e.g. one delivery attempt of this request)."""
        return TraceContext(trace_id=self.trace_id, span_id=span_id,
                            parent_id=self.span_id)

    def as_wire(self) -> dict:
        """The envelope-field form (plain JSON-able dict)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id}

    @classmethod
    def from_wire(cls, data) -> "TraceContext | None":
        """Parse an envelope field; ``None`` if malformed.

        The fabric is untrusted — a corrupted bit can land anywhere,
        including inside the trace field — so parsing never raises.
        """
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        parent_id = data.get("parent_id")
        if not isinstance(trace_id, int) or isinstance(trace_id, bool):
            return None
        if not isinstance(span_id, int) or isinstance(span_id, bool):
            return None
        if parent_id is not None and (not isinstance(parent_id, int) or
                                      isinstance(parent_id, bool)):
            return None
        return cls(trace_id=trace_id, span_id=span_id,
                   parent_id=parent_id)


def attach_context(envelope: dict, ctx: "TraceContext | None") -> dict:
    """Attach ``ctx`` to a fabric envelope (in place; returns it).

    A ``None`` context leaves the envelope untouched, so control frames
    that predate any request (attestation, channel init) can share call
    sites with request-path frames.
    """
    if ctx is not None:
        envelope[TRACE_KEY] = ctx.as_wire()
    return envelope


def extract_context(message) -> "TraceContext | None":
    """The context carried by a decoded envelope, or ``None``."""
    if not isinstance(message, dict):
        return None
    return TraceContext.from_wire(message.get(TRACE_KEY))


def peek_context(wire: bytes) -> "TraceContext | None":
    """Best-effort context peek at raw fabric bytes.

    The scope layer sits *below* ``cluster`` and must not import its
    codec, so it carries its own (identical, trivial) JSON peek.
    Garbage — corrupted frames, sealed blobs — yields ``None``.
    """
    try:
        message = json.loads(wire.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(message, dict):
        return None
    return extract_context(message)
