"""Process-wide feature knobs read from the environment.

veil-warp follows the veil-turbo precedent (``VEIL_TLB``): every fast
path is parity-pinned against its slow twin, and one environment knob
flips between them so the parity suites can assert byte-identical
ledgers, traces, and outputs in both modes.

This module sits below every other ``repro`` package (it imports only
the standard library) so hardware, crypto, and kernel layers can all
consult the knob without layering cycles.
"""

from __future__ import annotations

import os

#: Environment variable gating the veil-warp fast paths (bulk copies +
#: process-parallel fleet).  Unset or any value other than ``"0"`` means
#: enabled; ``VEIL_WARP=0`` selects the historical per-unit paths.
WARP_ENV = "VEIL_WARP"


def warp_enabled() -> bool:
    """True when the veil-warp fast paths are enabled (the default)."""
    return os.environ.get(WARP_ENV, "1") != "0"


#: Environment variable enabling the veil-surge event-heap invariant
#: self-checks (O(n) per pop).  Off by default; the determinism suite
#: turns it on so a broken heap fails loudly instead of reordering
#: events silently.
SURGE_CHECK_ENV = "VEIL_SURGE_CHECK"


def surge_check_enabled() -> bool:
    """True when event-heap invariant checks are enabled (off by default)."""
    return os.environ.get(SURGE_CHECK_ENV, "0") != "0"
