#!/usr/bin/env python3
"""Shielded database: run the SQLite workload inside a VeilS-ENC enclave.

The paper's motivating scenario (section 6.2): a computation over
sensitive data runs in an in-process enclave that the *operating system
itself* cannot read, while the OS still provides files and scheduling.

This example:
1. measures the database workload natively and inside an enclave
   (regenerating one Fig. 5 bar, overhead + exit rate);
2. demonstrates the confidentiality property: a fully compromised kernel
   trying to read the enclave's working memory halts the CVM;
3. demonstrates secure demand paging: a page swapped out by the OS comes
   back verified, and a corrupted swap blob is rejected.
"""

from repro import VeilConfig, boot_native_system, boot_veil_system
from repro.enclave import EnclaveHost, build_test_binary
from repro.errors import CvmHalted, SecurityViolation
from repro.hw.cycles import CLOCK_HZ
from repro.workloads.base import EnclaveApi, NativeApi, measure
from repro.workloads.programs import program_by_name

CONFIG = VeilConfig(memory_bytes=48 * 1024 * 1024, num_cores=2)


def run_native(program):
    system = boot_native_system(CONFIG)
    state = program.setup(system.kernel)
    proc = system.kernel.create_process("sqlite")
    api = NativeApi(system.kernel, system.boot_core, proc)
    return measure(system.machine, "native",
                   lambda: program.run(api, state))


def run_shielded(program):
    system = boot_veil_system(CONFIG)
    state = program.setup(system.kernel)
    host = EnclaveHost(system, build_test_binary("sqlite-enclave",
                                                 heap_pages=24),
                       shared_pages=24)
    host.launch()
    stats = measure(
        system.machine, "enclave",
        lambda: host.run(lambda libc: program.run(EnclaveApi(libc),
                                                  state)))
    return system, host, stats


def main() -> None:
    program = program_by_name("SQLite")
    print(f"workload: {program.name} -- {program.table4_setting}")

    native = run_native(program)
    system, host, shielded = run_shielded(program)
    runtime = host.runtime

    overhead = 100.0 * shielded.overhead_vs(native)
    exit_rate = runtime.enclave_exits / (shielded.cycles / CLOCK_HZ)
    print(f"\nnative   : {native.cycles:>12,} cycles")
    print(f"shielded : {shielded.cycles:>12,} cycles "
          f"(+{overhead:.1f}% -- paper measured ~64% for SQLite)")
    print(f"exit rate: {exit_rate:,.0f}/s, "
          f"{runtime.redirect_bytes:,} bytes marshalled")

    print("\n-- confidentiality: the OS cannot read enclave memory --")
    setup = system.integration.enclaves[host.enclave_id]
    heap_vaddr = setup.layout["heap"][0]
    host.run(lambda libc: libc.poke(heap_vaddr, b"customer-PII"))
    attacker = system.kernel.compromise(system.boot_core)
    target_ppn = setup.region_ppns[heap_vaddr >> 12]
    try:
        attacker.read_phys(target_ppn << 12, 16)
        print("BREACH: kernel read enclave memory!")
    except CvmHalted as halt:
        print(f"kernel read attempt -> {halt}")

    print("\n-- secure demand paging --")
    system2, host2, _ = run_shielded(program)
    setup2 = system2.integration.enclaves[host2.enclave_id]
    heap2 = setup2.layout["heap"][0]
    host2.run(lambda libc: libc.poke(heap2, b"swap-me-safely"))
    system2.integration.evict_enclave_page(system2.boot_core,
                                           host2.enclave_id, heap2)
    back = host2.run(lambda libc: libc.peek(heap2, 14))
    print(f"page swapped out (encrypted) and back: {back!r}")
    system2.integration.evict_enclave_page(system2.boot_core,
                                           host2.enclave_id, heap2)
    vpn = heap2 >> 12
    ciphertext, tag = setup2.swap_store[vpn]
    setup2.swap_store[vpn] = (b"\x00" * len(ciphertext), tag)
    try:
        host2.run(lambda libc: libc.peek(heap2, 4))
        print("BREACH: corrupted swap blob accepted!")
    except SecurityViolation as rejected:
        print(f"corrupted swap blob -> rejected ({rejected})")


if __name__ == "__main__":
    main()
