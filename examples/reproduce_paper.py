#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Prints the section 9.1 microbenchmarks, CS1-CS3 (Figs. 4-6), the security
tables (1 & 2 + section 8.3), and the LTP conformance summary.  Takes a
few seconds end to end.
"""

import time

from repro.attacks import (run_log_attacks, run_table1, run_table2,
                           run_validation)
from repro.bench import (render_attack_results, render_background,
                         render_boot, render_cs1, render_fig4,
                         render_fig5, render_fig6, render_switch,
                         run_cs1, run_fig4, run_fig5, run_fig6,
                         run_micro_background, run_micro_boot,
                         run_micro_switch)
from repro.core import VeilConfig, boot_veil_system
from repro.workloads.ltp import run_ltp


def section(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    started = time.time()

    section("Section 9.1: microbenchmarks")
    print(render_boot(run_micro_boot(runs=1)))
    print()
    print(render_switch(run_micro_switch(5000)))
    print()
    print(render_background(run_micro_background()))

    section("CS1: secure module load/unload")
    print(render_cs1(run_cs1(repetitions=50)))

    section("CS2: Fig. 4 -- enclave syscall redirection")
    print(render_fig4(run_fig4(iterations=30)))

    section("CS2: Fig. 5 -- shielded real-world programs")
    print(render_fig5(run_fig5()))

    section("CS3: Fig. 6 -- secure system-call auditing")
    print(render_fig6(run_fig6()))

    section("Tables 1 & 2 + section 8.3: security validation")
    print(render_attack_results(run_table1() + run_table2() +
                                run_log_attacks() + run_validation()))

    section("Section 7: LTP-style SDK conformance")
    system = boot_veil_system(VeilConfig(memory_bytes=32 * 1024 * 1024,
                                         num_cores=2,
                                         log_storage_pages=64))
    print(run_ltp(system).summary())

    section("Ablations (design-choice experiments)")
    from repro.bench.ablations import (render_ablations,
                                       run_batching_ablation,
                                       run_boot_scaling,
                                       run_flush_ablation,
                                       run_payload_sweep,
                                       run_vsgx_comparison)
    print(render_ablations(run_batching_ablation(), run_flush_ablation(),
                           run_vsgx_comparison(),
                           run_boot_scaling(sizes_mb=(256, 512)),
                           run_payload_sweep()))

    print(f"\nfull evaluation regenerated in "
          f"{time.time() - started:.1f} s (host wall time)")


if __name__ == "__main__":
    main()
