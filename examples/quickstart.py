#!/usr/bin/env python3
"""Quickstart: boot a Veil CVM and exercise every protected service.

Runs in a few hundred milliseconds:

1. boot the full stack (SEV-SNP machine -> hypervisor -> VeilMon ->
   services -> commodity kernel in DomUNT);
2. attest the CVM as a remote user and establish the secure channel;
3. activate kernel code integrity and load a signed module through it;
4. enable tamper-proof audit logging;
5. run a tiny program inside a VeilS-ENC enclave.
"""

from repro import VeilConfig, boot_veil_system
from repro.core import module_signing_key
from repro.enclave import EnclaveHost, build_test_binary
from repro.hw.cycles import cycles_to_seconds
from repro.kernel import layout
from repro.kernel.fs import O_CREAT, O_RDWR
from repro.kernel.modules import build_module


def main() -> None:
    print("== Booting a Veil CVM ==")
    system = boot_veil_system(VeilConfig(memory_bytes=64 * 1024 * 1024,
                                         num_cores=2))
    core = system.boot_core
    print(system.machine.describe())
    print(f"kernel executes in DomUNT (VMPL-{core.vmpl}); Veil added "
          f"{cycles_to_seconds(system.veil_boot_delta.total) * 1000:.0f} "
          "simulated ms to boot")

    print("\n== Remote attestation ==")
    user = system.attest_and_connect()
    print("launch measurement verified; DH channel established with "
          "VMPL-0 software")

    print("\n== VeilS-KCI: kernel code integrity ==")
    reply = system.integration.activate_kci(core)
    print(f"W^X enforced over {reply['text_pages']} text + "
          f"{reply['data_pages']} data pages")
    image = build_module("hello_mod", text_size=4728, extra_data_pages=4,
                         signing_key=module_signing_key())
    module = system.integration.load_module(core, image)
    print(f"module installed TOCTOU-free at {module.vaddr:#x} "
          f"({len(module.ppns)} pages, by {module.loaded_by})")

    print("\n== VeilS-LOG: tamper-proof auditing ==")
    system.integration.enable_protected_logging()
    proc = system.kernel.create_process("demo")
    fd = system.kernel.syscall(core, proc, "open", "/tmp/audited",
                               O_CREAT | O_RDWR)
    system.kernel.syscall(core, proc, "close", fd)
    print(f"{system.log.entry_count} records in VMPL-protected storage")

    print("\n== VeilS-ENC: shielded execution ==")
    binary = build_test_binary("quickstart-enclave", heap_pages=8)
    host = EnclaveHost(system, binary)
    host.launch()
    host.attest(binary.expected_measurement(layout.ENCLAVE_BASE))
    print(f"enclave measurement verified: {host.measurement_hex[:24]}...")

    def enclave_main(libc):
        fd = libc.open("/tmp/secret.txt", O_CREAT | O_RDWR)
        libc.write(fd, b"processed inside the enclave")
        libc.lseek(fd, 0, 0)
        data = libc.read(fd, 64)
        libc.close(fd)
        libc.compute(100_000)
        return data

    result = host.run(enclave_main)
    rt = host.runtime
    print(f"enclave returned {result!r}")
    print(f"  {rt.syscall_count} redirected syscalls, "
          f"{rt.enclave_exits} world switches, "
          f"{rt.redirect_bytes} bytes marshalled")
    host.destroy()
    print("\nDone.")


if __name__ == "__main__":
    main()
