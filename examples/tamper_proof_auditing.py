#!/usr/bin/env python3
"""Forensic logging that survives a kernel compromise (VeilS-LOG).

The paper's section 6.3 scenario end to end:

1. a web-server workload produces audit records under the paper's
   ruleset, stored in VMPL-protected append-only memory;
2. the attacker then fully compromises the kernel and tries to rewrite
   history -- against the in-memory Kaudit baseline this silently
   succeeds; against VeilS-LOG the CVM halts;
3. the remote user retrieves the (intact) logs over the authenticated
   channel and authorizes a storage clear.
"""

import json

from repro import VeilConfig, boot_veil_system
from repro.errors import CvmHalted
from repro.kernel.audit import InMemoryAuditSink
from repro.workloads.base import NativeApi, measure
from repro.workloads.audit_programs import audited_program_by_name

CONFIG = VeilConfig(memory_bytes=48 * 1024 * 1024, num_cores=2,
                    log_storage_pages=512)


def run_workload(system):
    program = audited_program_by_name("NGINX")
    state = program.setup(system.kernel)
    proc = system.kernel.create_process("nginx")
    api = NativeApi(system.kernel, system.boot_core, proc)
    return measure(system.machine, program.name,
                   lambda: program.run(api, state))


def main() -> None:
    print("== Baseline: in-memory Kaudit ==")
    baseline = boot_veil_system(CONFIG)
    sink = InMemoryAuditSink()
    baseline.kernel.audit.set_sink(sink)
    baseline.kernel.enable_default_auditing()
    run_workload(baseline)
    print(f"{sink.entry_count()} records collected")
    attacker = baseline.kernel.compromise(baseline.boot_core)
    attacker.tamper_audit_storage()
    print("after compromise: first record now reads "
          f"{sink.records[0]!r}  <-- silently forged")

    print("\n== VeilS-LOG ==")
    system = boot_veil_system(CONFIG)
    user = system.attest_and_connect()
    system.integration.enable_protected_logging()
    stats = run_workload(system)
    print(f"{system.log.entry_count} records in protected storage "
          f"({stats.cycles:,} cycles of audited work)")

    attacker = system.kernel.compromise(system.boot_core)
    try:
        attacker.tamper_audit_storage()
        print("BREACH: protected storage rewritten!")
    except CvmHalted as halt:
        print(f"tamper attempt -> {halt}")

    print("\n== Remote retrieval over the secure channel ==")
    # The CVM halted above, so retrieve from a fresh run of the same
    # scenario (the paper's flow: users retrieve logs periodically).
    system = boot_veil_system(CONFIG)
    user = system.attest_and_connect()
    system.integration.enable_protected_logging()
    run_workload(system)
    retrieved = []
    cursor = 0
    while cursor is not None:
        reply = system.gateway.call_service(
            system.boot_core, {"op": "log_export", "start": cursor})
        payload = user.channel.receive(bytes.fromhex(
            reply["record_hex"]))
        retrieved.extend(payload["logs"])
        cursor = reply["next"]
    first = json.loads(retrieved[0])
    print(f"retrieved {len(retrieved)} sealed records in chunks; first: "
          f"{first['detail']['syscall']} by pid {first['pid']}")
    clear = user.channel.send({"cmd": "clear_logs"})
    system.gateway.call_service(system.boot_core, {
        "op": "log_clear", "record_hex": clear.hex()})
    print(f"user-authorized clear done; storage now holds "
          f"{system.log.entry_count} records")


if __name__ == "__main__":
    main()
