#!/usr/bin/env python3
"""Multiple enclaves in one CVM: isolation, sharing, threads, batching.

Unlike vSGX (one CVM per computation), VeilS-ENC multiplexes potentially
unlimited enclaves inside a single CVM (paper section 11).  This example
runs three tenants side by side and demonstrates:

1. isolation by construction — disjoint physical pages + per-enclave
   protected page tables, verified at the same virtual address;
2. consensual sharing between two mutually-trusting enclaves
   (the section 10 Chancel-style model, without SFI);
3. a second enclave thread pinned to another VCPU (section 7 extension);
4. syscall batching amortizing exit costs (section 10 optimization).
"""

from repro import VeilConfig, boot_veil_system
from repro.enclave import EnclaveHost, build_test_binary
from repro.errors import SecurityViolation
from repro.kernel.fs import O_APPEND, O_CREAT, O_RDWR


def main() -> None:
    system = boot_veil_system(VeilConfig(memory_bytes=64 * 1024 * 1024,
                                         num_cores=2))
    tenants = {}
    for name in ("alice", "bob", "mallory"):
        host = EnclaveHost(system, build_test_binary(name, heap_pages=8))
        host.launch()
        tenants[name] = host
    print(f"3 enclaves live in one CVM: "
          f"{[h.enclave_id for h in tenants.values()]}")

    print("\n-- isolation: same virtual address, disjoint frames --")
    alice, bob, mallory = (tenants[n] for n in ("alice", "bob",
                                                "mallory"))
    data_vaddr = system.integration.enclaves[
        alice.enclave_id].layout["data"][0]
    alice.run(lambda libc: libc.poke(data_vaddr, b"alice-secret"))
    bob_view = bob.run(lambda libc: libc.peek(data_vaddr, 12))
    print(f"alice wrote 'alice-secret' at {data_vaddr:#x}; "
          f"bob reads {bob_view!r} there (his own page)")

    print("\n-- consensual sharing: alice <-> bob --")
    alice.run(lambda libc: libc.grant_share(bob.enclave_id,
                                            data_vaddr, 1))
    window = 0x2f00_0000
    bob.run(lambda libc: libc.accept_share(alice.enclave_id, data_vaddr,
                                           window, 1))
    shared = bob.run(lambda libc: libc.peek(window, 12))
    print(f"after grant+accept, bob reads {shared!r} through his window")
    try:
        mallory.run(lambda libc: libc.accept_share(
            alice.enclave_id, data_vaddr, window, 1))
        print("BREACH: mallory mapped alice's memory!")
    except SecurityViolation as denied:
        print(f"mallory's accept -> denied ({denied})")

    print("\n-- a second thread for alice on VCPU 1 --")
    thread = alice.spawn_thread(1)
    seen = alice.run_on(thread, lambda libc: (libc.rt.core.cpu_index,
                                              libc.peek(data_vaddr, 12)))
    print(f"thread on core {seen[0]} reads the shared enclave memory: "
          f"{seen[1]!r}")

    print("\n-- syscall batching --")

    def log_batched(libc):
        fd = libc.open("/tmp/alice.log", O_CREAT | O_RDWR | O_APPEND)
        before = libc.rt.enclave_exits
        with libc.batch() as batch:
            for index in range(32):
                batch.write(fd, f"event {index}\n".encode())
        switches = libc.rt.enclave_exits - before
        libc.close(fd)
        return switches

    switches = alice.run(log_batched)
    print(f"32 writes flushed with {switches} world switches "
          "(vs 64 unbatched)")


if __name__ == "__main__":
    main()
