#!/usr/bin/env python3
"""Kernel code integrity with VeilS-KCI (paper sections 6.1, 8.3).

Shows the full CS1 story:

1. activate W^X over the kernel image;
2. load a signed module through the TOCTOU-free service path and measure
   the cost against the native loader;
3. replay the paper's section 8.3 validation attack: flip the
   page-table write bit (possible!) and overwrite module text (vetoed
   by the RMP -- the CVM halts with continuous #NPFs);
4. show that forged and post-verification-modified modules are refused.
"""

from repro import VeilConfig, boot_native_system, boot_veil_system
from repro.core import module_signing_key
from repro.errors import CvmHalted, SecurityViolation
from repro.kernel.modules import ModuleImage, build_module

CONFIG = VeilConfig(memory_bytes=48 * 1024 * 1024, num_cores=2)
KEY = module_signing_key()


def measure_load(system, loader_fn, unload_fn, image, reps=25):
    load = unload = 0
    for _ in range(reps):
        before = system.machine.ledger.snapshot()
        loader_fn(image)
        load += system.machine.ledger.since(before).total
        before = system.machine.ledger.snapshot()
        unload_fn(image.name)
        unload += system.machine.ledger.since(before).total
    return load // reps, unload // reps


def main() -> None:
    image = build_module("sensor_driver", text_size=4728,
                         extra_data_pages=4, signing_key=KEY)

    print("== Native CVM: unprotected module loading ==")
    native = boot_native_system(CONFIG)
    native.kernel.module_loader.trusted_key = KEY.public
    core = native.boot_core
    with native.kernel.kernel_context(core):
        native_load, native_unload = measure_load(
            native,
            lambda img: native.kernel.module_loader.load(core, img),
            lambda name: native.kernel.module_loader.unload(core, name),
            image)
    print(f"load {native_load:,} / unload {native_unload:,} cycles")

    print("\n== Veil CVM: VeilS-KCI active ==")
    veil = boot_veil_system(CONFIG)
    vcore = veil.boot_core
    veil.integration.activate_kci(vcore)
    kci_load, kci_unload = measure_load(
        veil,
        lambda img: veil.integration.load_module(vcore, img),
        lambda name: veil.integration.unload_module(vcore, name),
        image)
    print(f"load {kci_load:,} / unload {kci_unload:,} cycles")
    print(f"overhead: load +{100 * (kci_load - native_load) / native_load:.1f}%, "
          f"unload +{100 * (kci_unload - native_unload) / native_unload:.1f}% "
          "(paper: +5.7% / +4.2%)")

    print("\n== Section 8.3 validation attack ==")
    module = veil.integration.load_module(vcore, image)
    attacker = veil.kernel.compromise(vcore)
    attacker.disable_pt_write_protection(module.vaddr)
    print("page-table write bit flipped (the kernel owns its tables)...")
    try:
        attacker.write_virt(module.vaddr, b"\xcc" * 16)
        print("BREACH: module text overwritten!")
    except CvmHalted as halt:
        print(f"text overwrite -> {halt}")

    print("\n== Forged module refused ==")
    veil2 = boot_veil_system(CONFIG)
    veil2.integration.activate_kci(veil2.boot_core)
    forged = ModuleImage("rootkit", image.text + b"\xcc",
                         image.relocations, image.signature,
                         image.extra_data_pages)
    try:
        veil2.integration.load_module(veil2.boot_core, forged)
        print("BREACH: forged module installed!")
    except SecurityViolation as refused:
        print(f"forged module -> refused ({refused})")


if __name__ == "__main__":
    main()
