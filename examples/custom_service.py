#!/usr/bin/env python3
"""Extending Veil with a new protected service (framework generality).

The paper's claim (section 6): "Any service can leverage such protection
using Veil."  This example builds **VeilS-VAULT** — a tiny protected
secret store — in ~60 lines:

* secrets live in VMPL-protected DomSER memory;
* processes *store* secrets through a service request but can never read
  them back; the service only answers HMAC challenges with them;
* a compromised kernel trying to read the vault halts the CVM.

The service is registered through ``VeilConfig.extra_services``, so its
name is part of the measured boot image the remote user attests.
"""

import hashlib
import hmac

from repro import VeilConfig, boot_veil_system
from repro.core.services.base import ProtectedService
from repro.errors import CvmHalted, SecurityViolation
from repro.hw.memory import page_base


class VeilSVault(ProtectedService):
    """A protected secret store: write-only from the OS side."""

    name = "veils-vault"
    IMAGE_PAGES = 4

    def __init__(self, veilmon):
        super().__init__(veilmon)
        self.storage_ppns = veilmon.reserve_protected_frames(
            4, "vault-storage")
        self._index = {}          # secret name -> (offset, length)
        self._cursor = 0

    def handlers(self):
        return {
            "vault_store": self.handle_store,
            "vault_challenge": self.handle_challenge,
        }

    def handle_store(self, core, request):
        name = str(request["name"])
        secret = bytes.fromhex(request["secret_hex"])
        if self._cursor + len(secret) > len(self.storage_ppns) * 4096:
            raise SecurityViolation("vault full")
        page_index, offset = divmod(self._cursor, 4096)
        core.write_phys(page_base(self.storage_ppns[page_index]) + offset,
                        secret)
        self._index[name] = (self._cursor, len(secret))
        self._cursor += len(secret)
        self.request_count += 1
        return {"status": "ok"}

    def handle_challenge(self, core, request):
        """Prove possession: HMAC(secret, nonce) -- the secret itself
        never leaves protected memory."""
        name = str(request["name"])
        if name not in self._index:
            raise SecurityViolation(f"no secret named {name!r}")
        start, length = self._index[name]
        page_index, offset = divmod(start, 4096)
        secret = core.read_phys(
            page_base(self.storage_ppns[page_index]) + offset, length)
        nonce = bytes.fromhex(request["nonce_hex"])
        tag = hmac.new(secret, nonce, hashlib.sha256).hexdigest()
        return {"status": "ok", "tag_hex": tag}


def main() -> None:
    config = VeilConfig(
        memory_bytes=48 * 1024 * 1024, num_cores=2,
        extra_services=(("vault", VeilSVault),))
    system = boot_veil_system(config)
    core = system.boot_core
    print(f"services in measured boot image: "
          f"{sorted(system.veilmon.services)}")

    secret = b"api-key-7f3a9c"
    system.gateway.call_service(core, {
        "op": "vault_store", "name": "api-key",
        "secret_hex": secret.hex()})
    print("secret stored in DomSER-protected memory")

    nonce = b"fresh-nonce-0001"
    reply = system.gateway.call_service(core, {
        "op": "vault_challenge", "name": "api-key",
        "nonce_hex": nonce.hex()})
    expected = hmac.new(secret, nonce, hashlib.sha256).hexdigest()
    print(f"challenge answered correctly: {reply['tag_hex'] == expected}")

    vault = system.veilmon.services["veils-vault"]
    attacker = system.kernel.compromise(core)
    try:
        attacker.read_phys(vault.storage_ppns[0] * 4096, 16)
        print("BREACH: kernel read the vault!")
    except CvmHalted as halt:
        print(f"compromised kernel's vault read -> {halt}")


if __name__ == "__main__":
    main()
